// micro_perf: the hot-path kernel suite as a registered experiment. Each
// kernel is timed with a repeat-until-min-duration harness (median-free
// mean ns/op over the measured reps) and lands as one row of the "kernels"
// table — so `cisp_experiments run micro_perf` needs no external benchmark
// dependency, and `cisp_experiments perf` can lift the rows straight into
// a schema-versioned BENCH_PR<k>.json for the perf trajectory.
//
// Kernel sizes follow the fast flag: smoke runs measure the same code
// paths at reduced instance sizes (comparisons are only valid
// like-for-like; the BENCH json records the flag).

#include <array>
#include <chrono>
#include <cmath>
#include <functional>
#include <memory>

#include "bench_common.hpp"
#include "legacy_des.hpp"
#include "net/tcp.hpp"
#include "net/timeline/timeline.hpp"

namespace {
using namespace cisp;

using Clock = std::chrono::steady_clock;

/// Times `fn` by doubling the repetition count until the batch takes at
/// least `min_ms`, then reports mean ns per call over the final batch.
/// The warmup call (outside timing) touches lazily built fixtures.
struct KernelTiming {
  double ns_per_op = 0.0;
  std::uint64_t reps = 0;
};

KernelTiming time_kernel(const std::function<void()>& fn, double min_ms) {
  fn();  // warmup: fixture construction, caches, page faults
  std::uint64_t reps = 1;
  double best_ms = 0.0;
  for (;;) {
    const auto start = Clock::now();
    for (std::uint64_t r = 0; r < reps; ++r) fn();
    const std::chrono::duration<double, std::milli> elapsed =
        Clock::now() - start;
    if (elapsed.count() >= min_ms || reps >= (1ULL << 24)) {
      best_ms = elapsed.count();
      break;
    }
    // Jump straight to the projected count when the batch was way short.
    const double scale = elapsed.count() > 0.0
                             ? std::max(2.0, min_ms / elapsed.count() * 1.2)
                             : 2.0;
    reps = static_cast<std::uint64_t>(
        std::min(1.7e7, std::ceil(static_cast<double>(reps) * scale)));
  }
  // Re-time the chosen batch and keep the fastest of three: wall-clock
  // noise on a shared machine is one-sided (contention only ever adds
  // time), and a single batch of a long kernel would otherwise carry
  // +-25% jitter straight into the regression gate.
  for (int pass = 1; pass < 3; ++pass) {
    const auto start = Clock::now();
    for (std::uint64_t r = 0; r < reps; ++r) fn();
    const std::chrono::duration<double, std::milli> elapsed =
        Clock::now() - start;
    best_ms = std::min(best_ms, elapsed.count());
  }
  return {best_ms * 1e6 / static_cast<double>(reps), reps};
}

const terrain::RasterTerrain& bench_raster() {
  static const terrain::RasterTerrain raster = [] {
    const auto region = terrain::contiguous_us();
    return terrain::RasterTerrain(region.make_terrain(),
                                  {.lat_min = 38.0, .lat_max = 42.0,
                                   .lon_min = -106.0, .lon_max = -98.0},
                                  0.02);
  }();
  return raster;
}

graphs::Graph random_graph(std::size_t nodes, std::size_t edges) {
  Rng rng(7);
  graphs::Graph g(nodes);
  for (std::size_t e = 0; e < edges; ++e) {
    const auto a = static_cast<graphs::NodeId>(rng.uniform_index(nodes));
    const auto b = static_cast<graphs::NodeId>(rng.uniform_index(nodes));
    if (a != b) g.add_edge(a, b, rng.uniform(1.0, 100.0));
  }
  return g;
}

/// A dense random transportation LP (m supply rows x m demand rows).
lp::LinearProgram transport_lp(std::size_t m) {
  Rng rng(11);
  lp::LinearProgram problem;
  problem.num_vars = m * m;
  problem.objective.resize(m * m);
  for (auto& c : problem.objective) c = rng.uniform(1.0, 10.0);
  for (std::size_t i = 0; i < m; ++i) {
    std::vector<double> supply(m * m, 0.0);
    std::vector<double> demand(m * m, 0.0);
    for (std::size_t j = 0; j < m; ++j) {
      supply[i * m + j] = 1.0;
      demand[j * m + i] = 1.0;
    }
    problem.add_less_eq(std::move(supply), 10.0);
    problem.add_greater_eq(std::move(demand), 5.0);
  }
  return problem;
}

design::DesignInput stretch_eval_input(std::size_t n) {
  Rng rng(13);
  std::vector<std::vector<double>> geod(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      geod[i][j] = geod[j][i] = rng.uniform(100.0, 4000.0);
    }
  }
  auto fiber = geod;
  for (auto& row : fiber) {
    for (double& v : row) v *= 1.9;
  }
  std::vector<std::vector<double>> traffic(n, std::vector<double>(n, 1.0));
  for (std::size_t i = 0; i < n; ++i) traffic[i][i] = 0.0;
  std::vector<design::CandidateLink> cands;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    cands.push_back({i, i + 1, geod[i][i + 1] * 1.05, 10.0});
  }
  return design::DesignInput(std::move(geod), std::move(fiber),
                             std::move(traffic), std::move(cands), 1e9);
}

/// The 40-site (25 in fast mode) random design instance shared by the
/// solver kernels.
design::DesignInput solver_bench_instance(std::size_t n, double budget) {
  Rng rng(17);
  std::vector<std::pair<double, double>> pts;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, 4000.0), rng.uniform(0.0, 2000.0)});
  }
  std::vector<std::vector<double>> geod(n, std::vector<double>(n, 0.0));
  std::vector<std::vector<double>> traffic(n, std::vector<double>(n, 0.0));
  std::vector<design::CandidateLink> cands;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = pts[i].first - pts[j].first;
      const double dy = pts[i].second - pts[j].second;
      const double d = std::max(50.0, std::hypot(dx, dy));
      geod[i][j] = geod[j][i] = d;
      traffic[i][j] = traffic[j][i] = rng.uniform(0.01, 1.0);
      cands.push_back({i, j, d * rng.uniform(1.02, 1.12),
                       std::ceil(d / 90.0) + 1.0});
    }
  }
  auto fiber = geod;
  for (auto& row : fiber) {
    for (double& v : row) v *= 1.9;
  }
  return design::DesignInput(std::move(geod), std::move(fiber),
                             std::move(traffic), std::move(cands), budget);
}

/// The 30-site designed-and-provisioned instance the allocator kernels
/// load traffic onto.
struct FlowBenchInstance {
  design::DesignInput input;
  design::CapacityPlan plan;
  std::vector<std::vector<double>> traffic;
};

FlowBenchInstance flow_bench_instance() {
  const std::size_t n = 30;
  Rng rng(23);
  std::vector<std::pair<double, double>> pts;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, 4000.0), rng.uniform(0.0, 2000.0)});
  }
  std::vector<std::vector<double>> geod(n, std::vector<double>(n, 0.0));
  std::vector<std::vector<double>> traffic(n, std::vector<double>(n, 0.0));
  std::vector<design::CandidateLink> cands;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = pts[i].first - pts[j].first;
      const double dy = pts[i].second - pts[j].second;
      const double d = std::max(50.0, std::hypot(dx, dy));
      geod[i][j] = geod[j][i] = d;
      traffic[i][j] = traffic[j][i] = rng.uniform(0.01, 1.0);
      cands.push_back({i, j, d * 1.05, std::ceil(d / 90.0) + 1.0});
    }
  }
  auto fiber = geod;
  for (auto& row : fiber) {
    for (double& v : row) v *= 1.9;
  }
  design::DesignInput input(std::move(geod), std::move(fiber), traffic, cands,
                            300.0);
  const auto topo = design::solve_greedy(input);
  design::CapacityPlan plan;
  plan.aggregate_gbps = 100.0;
  for (const std::size_t link : topo.links) {
    design::LinkProvision prov;
    prov.candidate_index = link;
    prov.site_a = input.candidates()[link].site_a;
    prov.site_b = input.candidates()[link].site_b;
    prov.series = 3;
    plan.links.push_back(prov);
  }
  return {std::move(input), std::move(plan), std::move(traffic)};
}

/// A CBR source for the des_event_loop kernel: same emission pattern as
/// bench_legacy::LegacyCbrSource, scheduled through each core's idiomatic
/// API — the typed allocation-free kTimer path here (the production path:
/// UdpCbrSource rides the equivalent kUdpEmit kind), the std::function
/// priority queue on the legacy twin (closures were the only API the old
/// core offered; their per-event heap allocation is half of what the
/// overhaul retired). The workload — sources, rates, phases, event count —
/// is byte-identical across the pair.
struct CalendarCbrSource {
  net::Simulator& sim;
  net::Link& link;
  std::uint32_t flow_id;
  net::Time interval;
  net::Time stop_at = 0.0;

  static void on_timer(void* ctx) {
    static_cast<CalendarCbrSource*>(ctx)->emit();
  }

  void start(net::Time at, net::Time stop, std::uint64_t seed) {
    stop_at = stop;
    Rng rng(seed);
    sim.schedule_timer_at(at + rng.uniform() * interval, &on_timer, this);
  }

  void emit() {
    if (sim.now() >= stop_at) return;
    net::Packet p;
    p.flow_id = flow_id;
    p.size_bytes = 500;
    p.sent_at = sim.now();
    link.send(p);
    sim.schedule_timer(interval, &on_timer, this);
  }
};

engine::ResultSet run(const engine::ExperimentContext& ctx) {
  const double min_ms = ctx.params.real("min_ms", bench::pick(ctx, 80.0, 15.0));
  CISP_REQUIRE(min_ms > 0.0, "min_ms must be positive");

  engine::ResultSet results;
  auto& table = results.add_table(
      "kernels", "Hot-path kernel timings",
      {"kernel", "reps", "ns_per_op", "ops_per_s"});
  const auto add = [&](const std::string& name,
                       const std::function<void()>& fn) {
    const KernelTiming t = time_kernel(fn, min_ms);
    table.row({engine::Value::text(name),
               engine::Value::integer(static_cast<std::int64_t>(t.reps)),
               engine::Value::real(t.ns_per_op, 1),
               engine::Value::real(t.ns_per_op > 0.0 ? 1e9 / t.ns_per_op : 0.0,
                                   1)});
  };

  // --- Substrate kernels: terrain, RF, graph, LP ---------------------------
  const auto& raster = bench_raster();
  const geo::LatLon prof_a{39.5, -105.0};
  const geo::LatLon prof_b{39.9, -104.0};
  add("terrain_profile", [&] {
    volatile auto profile = terrain::build_profile(raster, prof_a, prof_b, 0.5)
                                .dist_km.size();
    (void)profile;
  });
  const auto profile = terrain::build_profile(raster, prof_a, prof_b, 0.5);
  add("hop_clearance", [&] {
    volatile bool clear = rf::evaluate_clearance(profile, 90.0, 90.0).clear;
    (void)clear;
  });
  add("rain_attenuation", [&] {
    volatile double db = rf::hop_rain_attenuation_db(80.0, 45.0, 11.0);
    (void)db;
  });
  const auto graph_small = random_graph(1000, 16000);
  add("dijkstra_1k", [&] {
    volatile double d = graphs::dijkstra(graph_small, 0).dist[999];
    (void)d;
  });
  if (!ctx.fast) {
    const auto graph_large = random_graph(10000, 160000);
    add("dijkstra_10k", [&] {
      volatile double d = graphs::dijkstra(graph_large, 0).dist[9999];
      (void)d;
    });
  }
  const auto lp_problem = transport_lp(bench::pick(ctx, std::size_t{12},
                                                   std::size_t{6}));
  add("simplex_transport", [&] {
    volatile double obj = lp::solve(lp_problem).objective;
    (void)obj;
  });
  const auto stretch_input =
      stretch_eval_input(bench::pick(ctx, std::size_t{120}, std::size_t{60}));
  add("stretch_eval_add_link", [&] {
    design::StretchEvaluator eval(stretch_input);
    const std::size_t links = stretch_input.candidates().size();
    for (std::size_t l = 0; l < links; ++l) eval.add_link(l);
    volatile double s = eval.mean_stretch();
    (void)s;
  });

  // --- Solver kernels ------------------------------------------------------
  const auto solver_input = solver_bench_instance(
      bench::pick(ctx, std::size_t{40}, std::size_t{25}),
      bench::pick(ctx, 400.0, 250.0));
  add("greedy_solver", [&] {
    design::GreedyOptions options;
    options.solver.threads = 1;
    volatile double s = design::solve_greedy(solver_input, options)
                            .mean_stretch;
    (void)s;
  });
  design::ExactOptions exact_options;
  exact_options.candidate_pool = design::greedy_candidate_pool(solver_input,
                                                               2.0);
  if (exact_options.candidate_pool.size() > bench::pick(ctx, std::size_t{18},
                                                        std::size_t{14})) {
    exact_options.candidate_pool.resize(
        bench::pick(ctx, std::size_t{18}, std::size_t{14}));
  }
  exact_options.solver.threads = 1;
  add("exact_solver", [&] {
    volatile double s =
        design::solve_exact(solver_input, exact_options).topology.mean_stretch;
    (void)s;
  });

  // --- Allocator kernels at traffic scale ----------------------------------
  const auto flow_instance = flow_bench_instance();
  net::TrafficRunOptions run_options;
  const auto flow_model = net::make_traffic_model(
      net::TrafficBackend::Flow, flow_instance.input, flow_instance.plan);
  const auto elastic_model = net::make_traffic_model(
      net::TrafficBackend::Elastic, flow_instance.input, flow_instance.plan);
  const auto demands_1e5 = net::flow::DemandMatrix::from_users(
      flow_instance.traffic, 100000, 1e5);
  add("max_min_1e5_users", [&] {
    volatile double d = flow_model->run(demands_1e5, run_options)
                            .stats.delivered_bps;
    (void)d;
  });
  if (!ctx.fast) {
    const auto demands_1e6 = net::flow::DemandMatrix::from_users(
        flow_instance.traffic, 1000000, 1e5);
    add("max_min_1e6_users", [&] {
      volatile double d = flow_model->run(demands_1e6, run_options)
                              .stats.delivered_bps;
      (void)d;
    });
  }
  // Saturated elastic instance: per-user demand far above fair share, so
  // the dual ascent must actually price the bottlenecks.
  add("alpha_fair_saturated", [&] {
    volatile double d = elastic_model->run(demands_1e5, run_options)
                            .stats.delivered_bps;
    (void)d;
  });

  // --- Control-plane repair kernels ----------------------------------------
  // Per-draw cost of a 1000-draw failure sweep, like for like: both
  // kernels replay the SAME cyclic delta sequence, the incremental
  // repairer touching only affected trees/pairs, the oracle pricing every
  // source and pair from scratch at each draw's cumulative state. The
  // spread between the two rows is the whole point of the subsystem.
  const std::size_t repair_nodes = bench::pick(ctx, std::size_t{120},
                                               std::size_t{60});
  net::LinkPlan repair_plan;
  std::vector<std::array<double, 2>> repair_xy;
  std::vector<net::TrafficDemand> repair_demands;
  std::vector<std::size_t> repair_mw;
  {
    Rng rng(29);
    repair_plan.node_count = repair_nodes;
    for (std::size_t i = 0; i < repair_nodes; ++i) {
      repair_xy.push_back(
          {rng.uniform(0.0, 3000.0), rng.uniform(0.0, 3000.0)});
    }
    const auto km = [&](std::size_t a, std::size_t b) {
      return std::hypot(repair_xy[a][0] - repair_xy[b][0],
                        repair_xy[a][1] - repair_xy[b][1]);
    };
    const auto push = [&](std::size_t a, std::size_t b, double gbps,
                          double path_stretch, bool mw) {
      net::PlannedLink link;
      link.a = static_cast<std::uint32_t>(a);
      link.b = static_cast<std::uint32_t>(b);
      link.rate_bps = gbps * 1e9;
      link.latency_s = km(a, b) * path_stretch / geo::kSpeedOfLightKmPerS;
      link.queue_packets = 100;
      link.is_mw = mw;
      if (mw) repair_mw.push_back(repair_plan.links.size());
      repair_plan.links.push_back(link);
    };
    // Fiber chain + closing ring keep the plan connected under any MW
    // churn; two MW shortcuts per node carry the low-stretch routes.
    for (std::size_t i = 0; i + 1 < repair_nodes; ++i) {
      push(i, i + 1, 400.0, 1.8, false);
    }
    push(0, repair_nodes - 1, 400.0, 1.8, false);
    for (std::size_t i = 0; i < repair_nodes; ++i) {
      for (int s = 0; s < 2; ++s) {
        const std::size_t j = (i + 2 + rng.uniform_index(8)) % repair_nodes;
        if (j != i) push(i, j, rng.uniform(2.0, 20.0), 1.0, true);
      }
    }
    for (std::size_t i = 0; i < repair_nodes; ++i) {
      for (int d = 0; d < 8; ++d) {
        const std::size_t t = rng.uniform_index(repair_nodes);
        // Rates sized so the intact plan runs uncongested and failures
        // cause LOCAL congestion — the regime the repairer targets.
        if (t != i) {
          repair_demands.push_back({static_cast<std::uint32_t>(i),
                                    static_cast<std::uint32_t>(t),
                                    rng.uniform(5e7, 2e8)});
        }
      }
    }
  }
  const net::flow::DirectKmFn repair_direct =
      [&](std::uint32_t s, std::uint32_t t) {
        return std::hypot(repair_xy[s][0] - repair_xy[t][0],
                          repair_xy[s][1] - repair_xy[t][1]);
      };
  // Weather-shaped churn: sparse, MW-only, with calm epochs (the
  // control_availability year saw churn in only ~half its epochs and a
  // ~10% working set when it did). Disturbed draws down or derate one MW
  // link and lift the disturbance from three disturbed draws ago, so at
  // most three links are off-nominal at once; calm draws are empty.
  std::vector<std::vector<net::control::LinkDelta>> draws;
  {
    Rng rng(31);
    std::vector<std::size_t> window;
    std::size_t disturbed = 0;
    for (std::size_t d = 0; d < 1000; ++d) {
      std::vector<net::control::LinkDelta> batch;
      if (rng.chance(0.5)) {
        const std::size_t link =
            repair_mw[rng.uniform_index(repair_mw.size())];
        if (disturbed++ % 2 == 0) {
          batch.push_back({link, false});
        } else {
          batch.push_back({link, true, rng.uniform(0.3, 0.9)});
        }
        window.push_back(link);
        if (window.size() > 3) {
          batch.push_back({window.front(), true, 1.0});
          window.erase(window.begin());
        }
      }
      draws.push_back(std::move(batch));
    }
  }
  net::control::RouteRepairer repairer(repair_plan, repair_demands, {},
                                       repair_direct);
  std::size_t draw_index = 0;
  add("repair_incremental_draw", [&] {
    volatile std::size_t touched =
        repairer.apply(draws[draw_index]).touched_pairs;
    (void)touched;
    draw_index = (draw_index + 1) % draws.size();
  });
  std::vector<net::control::LinkState> full_state(repair_plan.links.size());
  std::size_t full_index = 0;
  add("repair_full_draw", [&] {
    for (const auto& delta : draws[full_index]) {
      full_state[delta.link] = {delta.up, delta.capacity_factor};
    }
    full_index = (full_index + 1) % draws.size();
    volatile std::size_t n =
        net::control::RouteRepairer::full_recompute(
            repair_plan, repair_demands, {}, repair_direct, full_state)
            .size();
    (void)n;
  });

  // --- Timeline kernels ----------------------------------------------------
  // Per-epoch cost of the streaming timeline, like for like: both kernels
  // evaluate the SAME epoch sequence (diurnal swing + the weather-shaped
  // churn above, replayed as an absolute factor schedule) on the repair
  // fixture. The warm kernel carries routes, demand rewrites and
  // allocator structure epoch-to-epoch; the cold kernel is the
  // independent-cell rebuild every epoch paid before this subsystem
  // existed. The spread between the two rows is the timeline's speedup.
  std::vector<std::vector<double>> timeline_schedule;
  {
    std::vector<double> factors(repair_plan.links.size(), 1.0);
    for (const auto& batch : draws) {
      for (const auto& delta : batch) {
        factors[delta.link] = delta.up ? delta.capacity_factor : 0.0;
      }
      timeline_schedule.push_back(factors);
    }
  }
  net::flow::DemandMatrix timeline_demands = [&] {
    std::vector<net::flow::PairDemand> pairs;
    for (const auto& demand : repair_demands) {
      pairs.push_back({demand.src, demand.dst, 1, demand.rate_bps});
    }
    return net::flow::DemandMatrix::from_pairs(std::move(pairs));
  }();
  net::timeline::TimelineOptions timeline_options;
  timeline_options.factor_schedule = &timeline_schedule;
  timeline_options.diurnal.tz_offset_hours.resize(repair_nodes);
  for (std::size_t i = 0; i < repair_nodes; ++i) {
    // Synthetic solar offsets from the fixture's x coordinate (~4 hours
    // across the 3000 km span), so the diurnal swing moves demand around.
    timeline_options.diurnal.tz_offset_hours[i] = repair_xy[i][0] / 750.0;
  }
  net::timeline::TimelineDriver timeline_driver(
      repair_plan, {}, timeline_demands, repair_direct, timeline_options);
  add("timeline_year_step", [&] {
    volatile double d = timeline_driver.step().delivered_bps;
    (void)d;
  });
  std::size_t cold_epoch = 0;
  add("timeline_year_step_cold", [&] {
    volatile double d = timeline_driver.evaluate_cold(cold_epoch)
                            .delivered_bps;
    (void)d;
    cold_epoch = (cold_epoch + 1) % timeline_schedule.size();
  });

  // --- Multipath TE kernels ------------------------------------------------
  // Per-epoch cost of the TE split solve in the timeline regime: the
  // candidate pool is gathered once against nominal capacities (warm
  // candidate-key hit every draw), while the cycling weather draws change
  // the capacities so the SOLVE key misses and the LP re-runs — the
  // exact work a multipath_te timeline pays per churned epoch.
  net::TopologyView te_topo = net::view_from_plan(repair_plan);
  const std::vector<double> te_nominal = te_topo.view.capacity_bps;
  net::te::SplitWarmState te_warm;
  net::te::SplitOptions te_split_options;
  te_split_options.candidates.mcf_pairs = 32;
  te_split_options.max_lp_pairs = 64;
  te_split_options.gather_capacity_bps = &te_nominal;
  te_split_options.warm = &te_warm;
  std::vector<net::control::LinkState> te_state(repair_plan.links.size());
  std::size_t te_draw = 0;
  add("te_split_solve", [&] {
    for (const auto& delta : draws[te_draw]) {
      te_state[delta.link] = {delta.up, delta.capacity_factor};
    }
    te_draw = (te_draw + 1) % draws.size();
    for (std::size_t e = 0; e < te_topo.view.capacity_bps.size(); ++e) {
      const auto& ls = te_state[te_topo.view.edge_to_link[e] / 2];
      te_topo.view.capacity_bps[e] =
          te_nominal[e] * (ls.up ? ls.capacity_factor : 0.0);
    }
    volatile double u = net::te::solve_splits(te_topo.view, repair_demands,
                                              repair_direct,
                                              te_split_options)
                            .max_utilization;
    (void)u;
  });
  // One full happy-eyeballs draw over every pair against the repairer's
  // cumulative link state (fiber fallbacks precomputed at construction).
  const net::control::CandidateRacer te_racer(repair_plan, repair_demands,
                                              {});
  add("te_racing_draw", [&] {
    volatile std::size_t mw =
        te_racer.race_serial(repairer.routes(), repairer.link_state())
            .mw_winners;
    (void)mw;
  });

  // --- DES packet forwarding -----------------------------------------------
  add("packet_forwarding_10k", [] {
    net::Simulator sim;
    net::Network network(sim, 2);
    const std::size_t l = network.add_duplex_link(0, 1, 1e10, 0.001);
    network.node(0).set_route(0, 1, &network.link(l));
    std::uint64_t delivered = 0;
    network.node(1).set_local_deliver(
        [&](const net::Packet&) { ++delivered; });
    for (int i = 0; i < 10000; ++i) {
      net::Packet p;
      p.src = 0;
      p.dst = 1;
      p.size_bytes = 500;
      network.inject(p);
    }
    sim.run();
    volatile std::uint64_t out = delivered;
    (void)out;
  });

  // --- DES event core at scale ---------------------------------------------
  // 1e5 concurrent CBR timers into one fat link: the pending-event
  // population the 10^5-user packet runs sustain. The oldcore twin drives
  // the pre-rewrite binary-heap + std::function core (bench/legacy_des.hpp)
  // with the byte-identical workload, so the row pair isolates the event
  // engine: O(1) calendar buckets vs log(1e5) cache-hostile sift levels
  // plus per-packet closure allocation.
  constexpr std::size_t kDesSources = 100000;
  constexpr net::Time kDesInterval = 0.004;
  constexpr net::Time kDesStop = 0.01;
  constexpr net::Time kDesEnd = 0.02;
  add("des_event_loop_1e5", [&] {
    net::Simulator sim;
    std::uint64_t delivered = 0;
    net::Link link(sim, 1e12, 0.001, net::Link::kUnboundedQueue,
                   [&](const net::Packet&) { ++delivered; });
    std::vector<CalendarCbrSource> sources;
    sources.reserve(kDesSources);
    for (std::size_t i = 0; i < kDesSources; ++i) {
      sources.push_back({sim, link, static_cast<std::uint32_t>(i),
                         kDesInterval});
      sources.back().start(0.0, kDesStop, i);
    }
    sim.run_until(kDesEnd);
    volatile std::uint64_t out = delivered;
    (void)out;
  });
  add("des_event_loop_1e5_oldcore", [&] {
    bench_legacy::LegacySimulator sim;
    std::uint64_t delivered = 0;
    bench_legacy::LegacyLink link(sim, 1e12, 0.001,
                                  [&](const net::Packet&) { ++delivered; });
    std::vector<bench_legacy::LegacyCbrSource> sources;
    sources.reserve(kDesSources);
    for (std::size_t i = 0; i < kDesSources; ++i) {
      sources.emplace_back(sim, link, static_cast<std::uint32_t>(i),
                           kDesInterval);
      sources.back().start(0.0, kDesStop, i);
    }
    sim.run_until(kDesEnd);
    volatile std::uint64_t out = delivered;
    (void)out;
  });
  // 1e4 short TCP flows over one duplex link: the typed pace/RTO/start
  // paths plus the ring/bitmap per-segment state, end to end.
  add("des_tcp_flows_1e4", [&] {
    net::Simulator sim;
    net::Network network(sim, 2);
    const std::size_t l = network.add_duplex_link(
        0, 1, 1e11, 0.001, net::Link::kUnboundedQueue);
    network.node(0).set_route(0, 1, &network.link(l));
    network.node(1).set_route(1, 0, &network.link(l + 1));
    net::TcpRegistry registry;
    registry.install(network, 0);
    registry.install(network, 1);
    constexpr std::size_t kFlows = 10000;
    std::vector<std::unique_ptr<net::TcpFlow>> flows;
    flows.reserve(kFlows);
    for (std::size_t f = 0; f < kFlows; ++f) {
      flows.push_back(std::make_unique<net::TcpFlow>(
          network, registry, static_cast<std::uint32_t>(f), 0, 1,
          8 * 1448, net::TcpFlow::Params{}));
      flows.back()->start(static_cast<double>(f) * 1e-6);
    }
    sim.run();
    std::size_t done = 0;
    for (const auto& flow : flows) done += flow->complete() ? 1 : 0;
    volatile std::size_t out = done;
    (void)out;
  });

  results.note(
      "Wall-clock kernel timings: comparisons are only meaningful against a "
      "run\nwith the same fast flag and similar hardware. `cisp_experiments "
      "perf` wraps\nthis suite into BENCH_PR<k>.json and gates >10% "
      "regressions against a\ncommitted baseline.");
  return results;
}

const engine::RegisterExperiment kRegistration{
    {.name = "micro_perf",
     .description =
         "Hot-path kernel timings: terrain/RF/graph/LP/solver/allocator/DES",
     .tags = {"bench", "perf"},
     .params = {{"min_ms", "80 (15 in fast mode)",
                 "minimum measured wall time per kernel batch"}}},
    run};

}  // namespace
