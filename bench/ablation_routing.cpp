// Ablation (§5 "Routing schemes"): shortest-path vs min-max-utilization vs
// throughput-optimal routing on a designed cISP. The paper reports that
// the alternative schemes absorb higher loads with near-zero loss but pay
// ~10% extra latency on average.

#include "bench_common.hpp"

int main() {
  using namespace cisp;
  bench::banner("ablation_routing",
                "§5 routing schemes: latency vs load tolerance");

  const auto scenario = bench::us_scenario();
  const std::size_t centers = bench::maybe_fast(40, 25);
  const auto problem = design::city_city_problem(scenario, 2000.0, centers);
  const auto topo = design::solve_greedy(problem.input);
  design::CapacityParams cap;
  cap.aggregate_gbps = 100.0;
  const auto plan = design::plan_capacity(problem.input, topo, problem.links,
                                          scenario.tower_graph.towers, cap);

  net::BuildOptions build;
  build.rate_scale = bench::maybe_fast(0.05, 0.02);
  const double sim_s = bench::maybe_fast(0.3, 0.1);

  std::vector<cisp::infra::PopulationCenter> pcs = scenario.centers;
  if (pcs.size() > centers) pcs.resize(centers);
  const auto traffic = infra::population_product_traffic(pcs);

  const std::vector<net::RoutingScheme> schemes = {
      net::RoutingScheme::ShortestPath,
      net::RoutingScheme::MinMaxUtilization,
      net::RoutingScheme::ThroughputOptimal};

  // Static route properties at design load.
  Table props("routing scheme properties (offline, design load)",
              {"scheme", "mean_path_latency_ms", "latency_vs_SP_%",
               "predicted_max_util"});
  double sp_latency = 0.0;
  for (const auto scheme : schemes) {
    auto instance = net::build_sim(problem.input, plan, build);
    const auto demands = net::demands_from_traffic(traffic, cap.aggregate_gbps,
                                                   build.rate_scale);
    const auto result = net::install_routes(*instance.network, instance.view,
                                            demands, scheme);
    if (scheme == net::RoutingScheme::ShortestPath) {
      sp_latency = result.mean_path_latency_s;
    }
    props.add_row(
        {net::to_string(scheme), fmt(result.mean_path_latency_s * 1000.0, 3),
         fmt((result.mean_path_latency_s / sp_latency - 1.0) * 100.0, 1),
         fmt(result.max_link_utilization, 2)});
  }
  props.print(std::cout);

  // Packet-level loss at increasing loads.
  Table loss("loss rate (%) vs load by scheme",
             {"load_%", "shortest-path", "min-max-util", "throughput-opt"});
  Table delay("mean delay (ms) vs load by scheme",
              {"load_%", "shortest-path", "min-max-util", "throughput-opt"});
  for (int load = 40; load <= 120; load += 20) {
    std::vector<std::string> loss_row = {std::to_string(load)};
    std::vector<std::string> delay_row = {std::to_string(load)};
    for (const auto scheme : schemes) {
      auto instance = net::build_sim(problem.input, plan, build);
      const auto demands = net::demands_from_traffic(
          traffic, cap.aggregate_gbps * load / 100.0, build.rate_scale);
      net::install_routes(*instance.network, instance.view, demands, scheme);
      const auto sources =
          net::attach_udp_workload(instance, demands, 0.0, sim_s, 33);
      instance.sim->run_until(sim_s + 0.2);
      loss_row.push_back(fmt(instance.monitor.loss_rate() * 100.0, 3));
      delay_row.push_back(fmt(instance.monitor.mean_delay_s() * 1000.0, 3));
    }
    loss.add_row(loss_row);
    delay.add_row(delay_row);
  }
  delay.print(std::cout);
  loss.print(std::cout);
  loss.maybe_write_csv("ablation_routing_loss");
  std::cout << "\nPaper shape: §5 reports the alternative schemes absorb "
               "higher loads at ~10%\nextra latency. Here min-max-utilization "
               "pays a small latency premium and\nwidest-path (our "
               "throughput-optimal stand-in) a large one, while both keep\n"
               "utilization far below shortest-path's bottleneck — same "
               "trade, different\noperating points.\n";
  return 0;
}
