// Ablation (§5 "Routing schemes"): shortest-path vs min-max-utilization vs
// throughput-optimal routing on a designed cISP. The paper reports that
// the alternative schemes absorb higher loads with near-zero loss but pay
// ~10% extra latency on average.
//
// Registered experiment: both stages execute through engine::run_sweep —
// the offline route properties fan out over the scheme axis, and the
// packet-level stage over the load x scheme grid.

#include "bench_common.hpp"

namespace {
using namespace cisp;

struct PropsRow {
  double mean_path_latency_s = 0.0;
  double max_link_utilization = 0.0;
};

struct Cell {
  double loss_pct = 0.0;
  double delay_ms = 0.0;
};

engine::ResultSet run(const engine::ExperimentContext& ctx) {
  const auto scenario = bench::us_scenario(ctx);
  const auto backend = bench::traffic_backend(ctx);
  const auto centers = static_cast<std::size_t>(
      ctx.params.integer("centers", bench::pick(ctx, 40, 25)));
  const auto problem = design::city_city_problem(
      scenario, ctx.params.real("budget", 2000.0), centers);
  const auto topo = design::solve_greedy(problem.input);
  design::CapacityParams cap;
  cap.aggregate_gbps = 100.0;
  const auto plan = design::plan_capacity(problem.input, topo, problem.links,
                                          scenario.tower_graph.towers, cap);

  net::BuildOptions build;
  build.rate_scale = bench::pick(ctx, 0.05, 0.02);
  const double sim_s = bench::pick(ctx, 0.3, 0.1);

  std::vector<infra::PopulationCenter> pcs = scenario.centers;
  if (pcs.size() > centers) pcs.resize(centers);
  const auto traffic = infra::population_product_traffic(pcs);

  const std::vector<net::RoutingScheme> schemes = {
      net::RoutingScheme::ShortestPath,
      net::RoutingScheme::MinMaxUtilization,
      net::RoutingScheme::ThroughputOptimal};

  // Static route properties at design load: one task per scheme. Routes
  // are computed over the backend-neutral view — no packet Network needed.
  engine::Grid props_grid;
  props_grid.index_axis("scheme", schemes.size());
  const auto props_sweep = engine::run_sweep(
      props_grid,
      [&](const engine::Point& point) {
        const auto topo_view =
            net::view_from_plan(net::plan_links(problem.input, plan, build));
        const auto demands = net::demands_from_traffic(
            traffic, cap.aggregate_gbps, build.rate_scale);
        const auto result = net::compute_routes(
            topo_view.view, demands, schemes[point.index("scheme")]);
        return PropsRow{result.mean_path_latency_s,
                        result.max_link_utilization};
      },
      {.threads = ctx.threads});

  engine::ResultSet results;
  const double sp_latency = props_sweep.at(0).mean_path_latency_s;
  auto& props = results.add_table(
      "ablation_routing_props",
      "routing scheme properties (offline, design load)",
      {"scheme", "mean_path_latency_ms", "latency_vs_SP_%",
       "predicted_max_util"});
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    const PropsRow& row = props_sweep.at(s);
    props.row(
        {net::to_string(schemes[s]),
         engine::Value::real(row.mean_path_latency_s * 1000.0, 3),
         engine::Value::real(
             (row.mean_path_latency_s / sp_latency - 1.0) * 100.0, 1),
         engine::Value::real(row.max_link_utilization, 2)});
  }

  // Traffic-level loss/delay at increasing loads: load x scheme grid,
  // each cell one run through the TrafficModel seam.
  std::vector<double> loads;
  for (int load = 40; load <= 120; load += 20) {
    loads.push_back(static_cast<double>(load));
  }
  engine::Grid grid;
  grid.axis("load", loads).index_axis("scheme", schemes.size());
  const auto sweep = engine::run_sweep(
      grid,
      [&](const engine::Point& point) {
        bench::TrafficCell cell;
        cell.scheme = schemes[point.index("scheme")];
        cell.aggregate_gbps = cap.aggregate_gbps * point.value("load") / 100.0;
        cell.sim_s = sim_s;
        cell.seed = 33;
        const auto stats = bench::run_traffic_cell(
            backend, problem.input, plan, build, traffic, cell);
        return Cell{stats.loss_rate * 100.0, stats.mean_delay_s * 1000.0};
      },
      {.threads = ctx.threads});

  auto& delay = results.add_table(
      "ablation_routing_delay", "mean delay (ms) vs load by scheme",
      {"load_%", "shortest-path", "min-max-util", "throughput-opt"});
  auto& loss = results.add_table(
      "ablation_routing_loss", "loss rate (%) vs load by scheme",
      {"load_%", "shortest-path", "min-max-util", "throughput-opt"});
  for (std::size_t l = 0; l < loads.size(); ++l) {
    std::vector<engine::Value> loss_row = {static_cast<int>(loads[l])};
    std::vector<engine::Value> delay_row = loss_row;
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      const Cell& cell = sweep.at(l * schemes.size() + s);
      loss_row.push_back(engine::Value::real(cell.loss_pct, 3));
      delay_row.push_back(engine::Value::real(cell.delay_ms, 3));
    }
    loss.row(loss_row);
    delay.row(delay_row);
  }
  results.note(
      "Paper shape: §5 reports the alternative schemes absorb higher loads "
      "at ~10%\nextra latency. Here min-max-utilization pays a small latency "
      "premium and\nwidest-path (our throughput-optimal stand-in) a large "
      "one, while both keep\nutilization far below shortest-path's "
      "bottleneck — same trade, different\noperating points.");
  return results;
}

const engine::RegisterExperiment kRegistration{
    {.name = "ablation_routing",
     .description = "§5 ablation: routing schemes, latency vs load tolerance",
     .tags = {"ablation", "simulation", "routing", "sweep"},
     .params = {{"budget", "2000", "tower budget for the design"},
                {"centers", "40 (25 in fast mode)",
                 "population centers in the design problem"},
                bench::traffic_backend_param()}},
    run};

}  // namespace
