// Fig. 8 + §6.2: a cISP across Europe (cities >= ~300k population) with
// the same methodology. The paper reports 1.04x stretch at ~3k towers —
// costs comparable to the US design, i.e. the US geography is not special.

#include "bench_common.hpp"

int main() {
  using namespace cisp;
  bench::banner("fig08_europe", "Fig. 8 / §6.2 Europe instantiation");

  const auto scenario = bench::eu_scenario();
  const auto problem = design::city_city_problem(scenario, 3000.0);
  std::cout << "EU centers=" << problem.sites.size()
            << " towers=" << scenario.tower_graph.towers.size()
            << " feasible_hops=" << scenario.tower_graph.feasible_hops
            << "\n\n";

  const auto fiber_only = design::StretchEvaluator::evaluate(problem.input, {});
  const auto topo = design::solve_greedy(problem.input);
  design::CapacityParams cap;
  cap.aggregate_gbps = 100.0;
  const auto plan = design::plan_capacity(problem.input, topo, problem.links,
                                          scenario.tower_graph.towers, cap);
  const auto cost = design::cost_of(plan);

  Table table("Fig 8 / §6.2: Europe vs paper", {"metric", "measured", "paper"});
  table.add_row({"population centers", std::to_string(problem.sites.size()),
                 "(cities >= 300k)"});
  table.add_row({"mean stretch (fiber only)", fmt(fiber_only.mean_stretch, 3),
                 "~1.9 (assumed as in US)"});
  table.add_row({"mean stretch (cISP)", fmt(topo.mean_stretch, 3), "1.04"});
  table.add_row({"towers used", fmt(topo.cost_towers, 0), "~3000"});
  table.add_row({"MW links built", std::to_string(topo.links.size()), "-"});
  table.add_row({"aggregate throughput (Gbps)", fmt(cap.aggregate_gbps, 0),
                 "100"});
  table.add_row({"cost per GB", fmt_money(cost.usd_per_gb),
                 "similar to US ($0.81)"});
  table.print(std::cout);
  table.maybe_write_csv("fig08_europe");

  std::cout << "\nFig 8 map: o = population center, * = MW link\n";
  AsciiMap map(scenario.region.box.lat_min, scenario.region.box.lat_max,
               scenario.region.box.lon_min, scenario.region.box.lon_max, 100,
               34);
  for (const std::size_t l : topo.links) {
    const auto& cand = problem.input.candidates()[l];
    map.line(problem.sites[cand.site_a].lat_deg,
             problem.sites[cand.site_a].lon_deg,
             problem.sites[cand.site_b].lat_deg,
             problem.sites[cand.site_b].lon_deg, '*');
  }
  for (const auto& site : problem.sites) {
    map.plot(site.lat_deg, site.lon_deg, 'o');
  }
  map.print(std::cout);

  std::cout << "\nPaper claim: with the same aggregate capacity target and "
               "budget scale, the EU\ndesign reaches the same stretch and "
               "similar cost — the approach is not\nUS-specific.\n";
  return 0;
}
