// Fig. 8 + §6.2: a cISP across Europe (cities >= ~300k population) with
// the same methodology. The paper reports 1.04x stretch at ~3k towers —
// costs comparable to the US design, i.e. the US geography is not special.

#include "bench_common.hpp"

namespace {
using namespace cisp;

engine::ResultSet run(const engine::ExperimentContext& ctx) {
  const auto scenario = bench::eu_scenario(ctx);
  const auto problem =
      design::city_city_problem(scenario, ctx.params.real("budget", 3000.0));

  engine::ResultSet results;
  results.note("EU centers=" + std::to_string(problem.sites.size()) +
               " towers=" + std::to_string(scenario.tower_graph.towers.size()) +
               " feasible_hops=" +
               std::to_string(scenario.tower_graph.feasible_hops));

  const auto fiber_only = design::StretchEvaluator::evaluate(problem.input, {});
  const auto topo = design::solve_greedy(problem.input);
  design::CapacityParams cap;
  cap.aggregate_gbps = ctx.params.real("aggregate_gbps", 100.0);
  const auto plan = design::plan_capacity(problem.input, topo, problem.links,
                                          scenario.tower_graph.towers, cap);
  const auto cost = design::cost_of(plan);

  auto& table = results.add_table("fig08_europe",
                                  "Fig 8 / §6.2: Europe vs paper",
                                  {"metric", "measured", "paper"});
  table.row({"population centers", problem.sites.size(),
             "(cities >= 300k)"});
  table.row({"mean stretch (fiber only)",
             engine::Value::real(fiber_only.mean_stretch, 3),
             "~1.9 (assumed as in US)"});
  table.row({"mean stretch (cISP)", engine::Value::real(topo.mean_stretch, 3),
             "1.04"});
  table.row({"towers used", engine::Value::real(topo.cost_towers, 0),
             "~3000"});
  table.row({"MW links built", topo.links.size(), "-"});
  table.row({"aggregate throughput (Gbps)",
             engine::Value::real(cap.aggregate_gbps, 0), "100"});
  table.row({"cost per GB", engine::Value::money(cost.usd_per_gb),
             "similar to US ($0.81)"});

  results.note(bench::topology_map_note(
      scenario, problem, topo, 100, 34,
      "Fig 8 map: o = population center, * = MW link"));
  results.note(
      "Paper claim: with the same aggregate capacity target and budget "
      "scale, the EU\ndesign reaches the same stretch and similar cost — the "
      "approach is not\nUS-specific.");
  return results;
}

const engine::RegisterExperiment kRegistration{
    {.name = "fig08_europe",
     .description = "Fig. 8 / §6.2: Europe instantiation",
     .tags = {"bench", "design", "europe"},
     .params = {{"budget", "3000", "tower budget for the design"},
                {"aggregate_gbps", "100",
                 "aggregate throughput the capacity plan provisions"}}},
    run};

}  // namespace
