// Fig. 2 (a, b): the design method is fast enough and near-optimal.
//
// (a) Runtime vs number of cities: the cISP heuristic solves the full
//     instance in seconds-to-minutes while the exact branch-and-bound
//     (our Gurobi-ILP substitute) hits an exponential wall and times out
//     beyond small instances — the paper saw the same wall at ~50 cities
//     with days of compute.
// (b) On every instance the exact solver finishes, the heuristic's mean
//     stretch matches the optimum to two decimal places.

#include <chrono>

#include "bench_common.hpp"

namespace {
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}
}  // namespace

int main() {
  using namespace cisp;
  bench::banner("fig02_solver_scaling", "Fig. 2(a) runtime, Fig. 2(b) stretch");

  const auto scenario = bench::us_scenario();
  std::cout << "towers=" << scenario.tower_graph.towers.size()
            << " feasible_hops=" << scenario.tower_graph.feasible_hops
            << " centers=" << scenario.centers.size() << "\n\n";

  Table table("Fig 2: heuristic vs exact ILP-equivalent solver",
              {"cities", "budget", "heuristic_s", "heuristic_stretch",
               "exact_s", "exact_stretch", "exact_status", "lp_rounding",
               "lp_size"});

  const double exact_time_limit = bench::maybe_fast(60.0, 10.0);
  const int max_exact_cities = bench::maybe_fast(12, 8);
  std::vector<std::size_t> sizes = {5, 6, 8, 10, 12, 16, 24, 40, 60, 80, 120};
  for (const std::size_t n : sizes) {
    if (n > scenario.centers.size()) break;
    // Budget proportional to city count (paper: 6,000 towers at 120).
    const double budget = 50.0 * static_cast<double>(n);
    const auto problem = design::city_city_problem(scenario, budget, n);

    const auto t0 = Clock::now();
    const auto heuristic = design::solve_cisp(problem.input);
    const double heuristic_s = seconds_since(t0);

    std::string exact_s = "-";
    std::string exact_stretch = "-";
    std::string status = "skipped (too large)";
    if (n <= static_cast<std::size_t>(max_exact_cities)) {
      design::ExactOptions options;
      options.time_limit_s = exact_time_limit;
      const auto t1 = Clock::now();
      const auto exact = design::solve_exact(problem.input, options);
      exact_s = fmt(seconds_since(t1), 2);
      exact_stretch = fmt(exact.topology.mean_stretch, 4);
      status = exact.proven_optimal ? "optimal" : "TIMEOUT";
    }
    // The paper's LP-relaxation + rounding baseline: worse than optimal
    // and non-scalable (its tableau outgrows the solver quickly).
    std::string lp_stretch = "-";
    std::string lp_size = "-";
    if (n <= 10) {
      const auto lp = design::solve_lp_rounding(problem.input);
      if (lp.solved) {
        lp_stretch = fmt(lp.topology.mean_stretch, 4);
        lp_size = std::to_string(lp.lp_variables) + "v/" +
                  std::to_string(lp.lp_constraints) + "c";
      } else {
        lp_stretch = "failed";
      }
    }
    table.add_row({std::to_string(n), fmt(budget, 0), fmt(heuristic_s, 2),
                   fmt(heuristic.mean_stretch, 4), exact_s, exact_stretch,
                   status, lp_stretch, lp_size});
  }
  table.print(std::cout);
  table.maybe_write_csv("fig02_solver_scaling");
  std::cout << "\nPaper-shape checks: the exact solver's runtime explodes "
               "with instance size\n(timing out where the heuristic takes "
               "seconds), and wherever it completes, the\nheuristic matches "
               "its stretch to ~2 decimals.\n";
  return 0;
}
