// Fig. 2 (a, b): the design method is fast enough and near-optimal.
//
// (a) Runtime vs number of cities: the cISP heuristic solves the full
//     instance in seconds-to-minutes while the exact branch-and-bound
//     (our Gurobi-ILP substitute) hits an exponential wall and times out
//     beyond small instances — the paper saw the same wall at ~50 cities
//     with days of compute.
// (b) On every instance the exact solver finishes, the heuristic's mean
//     stretch matches the optimum to two decimal places.
//
// Registered experiment: the per-size solves are independent, so the size
// axis runs through engine::run_sweep — and each solve additionally runs at
// every point of a solver-thread axis, exercising the sharded greedy and
// branch-and-bound. Stretch columns are identical along the threads axis
// (the solvers' determinism contract); only the runtime columns move.
// (Wall-clock columns naturally vary run to run.)

#include <chrono>

#include "bench_common.hpp"

namespace {
using namespace cisp;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Parses a comma-separated list of thread counts ("1,2,4") into axis
/// values; bad entries are a parameter error.
std::vector<double> parse_thread_axis(const std::string& text) {
  std::vector<double> values;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find(',', begin);
    if (end == std::string::npos) end = text.size();
    const std::string token = text.substr(begin, end - begin);
    CISP_REQUIRE(!token.empty() &&
                     token.find_first_not_of("0123456789") == std::string::npos,
                 "solver_threads expects a comma-separated list of counts, "
                 "got: " + text);
    values.push_back(static_cast<double>(std::stoul(token)));
    begin = end + 1;
  }
  return values;
}

engine::ResultSet run(const engine::ExperimentContext& ctx) {
  const auto scenario = bench::us_scenario(ctx);

  engine::ResultSet results;
  results.note("towers=" + std::to_string(scenario.tower_graph.towers.size()) +
               " feasible_hops=" +
               std::to_string(scenario.tower_graph.feasible_hops) +
               " centers=" + std::to_string(scenario.centers.size()));

  const double exact_time_limit =
      ctx.params.real("exact_time_limit_s", bench::pick(ctx, 60.0, 10.0));
  const auto max_exact_cities = static_cast<std::size_t>(
      ctx.params.integer("max_exact_cities", bench::pick(ctx, 12, 8)));
  const std::vector<double> thread_axis = parse_thread_axis(ctx.params.text(
      "solver_threads", ctx.fast ? "1,4" : "1,2,4"));

  std::vector<double> sizes;
  for (const std::size_t n : {5u, 6u, 8u, 10u, 12u, 16u, 24u, 40u, 60u, 80u,
                              120u}) {
    if (n <= scenario.centers.size()) sizes.push_back(static_cast<double>(n));
  }

  engine::Grid grid;
  grid.axis("cities", sizes);
  grid.axis("solver_threads", thread_axis);
  const auto sweep = engine::run_sweep(
      grid,
      [&](const engine::Point& point) -> std::vector<engine::Value> {
        const auto n = static_cast<std::size_t>(point.value("cities"));
        const auto solver_threads =
            static_cast<std::size_t>(point.value("solver_threads"));
        // Budget proportional to city count (paper: 6,000 towers at 120).
        const double budget = 50.0 * static_cast<double>(n);
        const auto problem = design::city_city_problem(scenario, budget, n);

        design::CispOptions cisp_options;
        cisp_options.greedy.solver.threads = solver_threads;
        const auto t0 = Clock::now();
        const auto heuristic = design::solve_cisp(problem.input, cisp_options);
        const double heuristic_s = seconds_since(t0);

        engine::Value exact_s;
        engine::Value exact_stretch;
        engine::Value status = "skipped (too large)";
        if (n <= max_exact_cities) {
          design::ExactOptions options;
          options.time_limit_s = exact_time_limit;
          options.solver.threads = solver_threads;
          const auto t1 = Clock::now();
          const auto exact = design::solve_exact(problem.input, options);
          exact_s = engine::Value::real(seconds_since(t1), 2);
          exact_stretch = engine::Value::real(exact.topology.mean_stretch, 4);
          status = exact.proven_optimal ? "optimal" : "TIMEOUT";
        }
        // The paper's LP-relaxation + rounding baseline: worse than optimal
        // and non-scalable (its tableau outgrows the solver quickly). It
        // has no threads knob, so it runs only on the first axis point.
        engine::Value lp_stretch;
        engine::Value lp_size;
        if (n <= 10 && point.index("solver_threads") == 0) {
          const auto lp = design::solve_lp_rounding(problem.input);
          if (lp.solved) {
            lp_stretch = engine::Value::real(lp.topology.mean_stretch, 4);
            lp_size = std::to_string(lp.lp_variables) + "v/" +
                      std::to_string(lp.lp_constraints) + "c";
          } else {
            lp_stretch = "failed";
          }
        }
        return {engine::Value::integer(static_cast<std::int64_t>(n)),
                engine::Value::integer(
                    static_cast<std::int64_t>(solver_threads)),
                engine::Value::real(budget, 0),
                engine::Value::real(heuristic_s, 2),
                engine::Value::real(heuristic.mean_stretch, 4),
                exact_s,
                exact_stretch,
                status,
                lp_stretch,
                lp_size};
      },
      {.threads = ctx.threads});

  auto& table = results.add_table(
      "fig02_solver_scaling",
      "Fig 2: heuristic vs exact ILP-equivalent solver",
      {"cities", "solver_threads", "budget", "heuristic_s",
       "heuristic_stretch", "exact_s", "exact_stretch", "exact_status",
       "lp_rounding", "lp_size"});
  for (std::size_t t = 0; t < sweep.size(); ++t) table.row(sweep.at(t));

  results.note(
      "Paper-shape checks: the exact solver's runtime explodes with instance "
      "size\n(timing out where the heuristic takes seconds), and wherever it "
      "completes, the\nheuristic matches its stretch to ~2 decimals. Stretch "
      "columns are identical\nalong the solver_threads axis — the sharded "
      "solvers' determinism contract.");
  return results;
}

const engine::RegisterExperiment kRegistration{
    {.name = "fig02_solver_scaling",
     .description = "Fig. 2: heuristic vs exact solver runtime and stretch",
     .tags = {"bench", "design", "solver", "sweep"},
     .params = {{"exact_time_limit_s", "60 (10 in fast mode)",
                 "branch-and-bound time limit per instance"},
                {"max_exact_cities", "12 (8 in fast mode)",
                 "largest instance handed to the exact solver"},
                {"solver_threads", "1,2,4 (1,4 in fast mode)",
                 "comma-separated solver thread counts swept as an axis"}}},
    run};

}  // namespace
