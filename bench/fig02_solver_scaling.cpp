// Fig. 2 (a, b): the design method is fast enough and near-optimal.
//
// (a) Runtime vs number of cities: the cISP heuristic solves the full
//     instance in seconds-to-minutes while the exact branch-and-bound
//     (our Gurobi-ILP substitute) hits an exponential wall and times out
//     beyond small instances — the paper saw the same wall at ~50 cities
//     with days of compute.
// (b) On every instance the exact solver finishes, the heuristic's mean
//     stretch matches the optimum to two decimal places.
//
// Registered experiment: the per-size solves are independent, so the size
// axis runs through engine::run_sweep. (Wall-clock columns naturally vary
// run to run; the solver outputs themselves are deterministic.)

#include <chrono>

#include "bench_common.hpp"

namespace {
using namespace cisp;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

engine::ResultSet run(const engine::ExperimentContext& ctx) {
  const auto scenario = bench::us_scenario(ctx);

  engine::ResultSet results;
  results.note("towers=" + std::to_string(scenario.tower_graph.towers.size()) +
               " feasible_hops=" +
               std::to_string(scenario.tower_graph.feasible_hops) +
               " centers=" + std::to_string(scenario.centers.size()));

  const double exact_time_limit =
      ctx.params.real("exact_time_limit_s", bench::pick(ctx, 60.0, 10.0));
  const auto max_exact_cities = static_cast<std::size_t>(
      ctx.params.integer("max_exact_cities", bench::pick(ctx, 12, 8)));

  std::vector<double> sizes;
  for (const std::size_t n : {5u, 6u, 8u, 10u, 12u, 16u, 24u, 40u, 60u, 80u,
                              120u}) {
    if (n <= scenario.centers.size()) sizes.push_back(static_cast<double>(n));
  }

  engine::Grid grid;
  grid.axis("cities", sizes);
  const auto sweep = engine::run_sweep(
      grid,
      [&](const engine::Point& point) -> std::vector<engine::Value> {
        const auto n = static_cast<std::size_t>(point.value("cities"));
        // Budget proportional to city count (paper: 6,000 towers at 120).
        const double budget = 50.0 * static_cast<double>(n);
        const auto problem = design::city_city_problem(scenario, budget, n);

        const auto t0 = Clock::now();
        const auto heuristic = design::solve_cisp(problem.input);
        const double heuristic_s = seconds_since(t0);

        engine::Value exact_s;
        engine::Value exact_stretch;
        engine::Value status = "skipped (too large)";
        if (n <= max_exact_cities) {
          design::ExactOptions options;
          options.time_limit_s = exact_time_limit;
          const auto t1 = Clock::now();
          const auto exact = design::solve_exact(problem.input, options);
          exact_s = engine::Value::real(seconds_since(t1), 2);
          exact_stretch = engine::Value::real(exact.topology.mean_stretch, 4);
          status = exact.proven_optimal ? "optimal" : "TIMEOUT";
        }
        // The paper's LP-relaxation + rounding baseline: worse than optimal
        // and non-scalable (its tableau outgrows the solver quickly).
        engine::Value lp_stretch;
        engine::Value lp_size;
        if (n <= 10) {
          const auto lp = design::solve_lp_rounding(problem.input);
          if (lp.solved) {
            lp_stretch = engine::Value::real(lp.topology.mean_stretch, 4);
            lp_size = std::to_string(lp.lp_variables) + "v/" +
                      std::to_string(lp.lp_constraints) + "c";
          } else {
            lp_stretch = "failed";
          }
        }
        return {engine::Value::integer(static_cast<std::int64_t>(n)),
                engine::Value::real(budget, 0),
                engine::Value::real(heuristic_s, 2),
                engine::Value::real(heuristic.mean_stretch, 4),
                exact_s,
                exact_stretch,
                status,
                lp_stretch,
                lp_size};
      },
      {.threads = ctx.threads});

  auto& table = results.add_table(
      "fig02_solver_scaling",
      "Fig 2: heuristic vs exact ILP-equivalent solver",
      {"cities", "budget", "heuristic_s", "heuristic_stretch", "exact_s",
       "exact_stretch", "exact_status", "lp_rounding", "lp_size"});
  for (std::size_t t = 0; t < sweep.size(); ++t) table.row(sweep.at(t));

  results.note(
      "Paper-shape checks: the exact solver's runtime explodes with instance "
      "size\n(timing out where the heuristic takes seconds), and wherever it "
      "completes, the\nheuristic matches its stretch to ~2 decimals.");
  return results;
}

const engine::RegisterExperiment kRegistration{
    {.name = "fig02_solver_scaling",
     .description = "Fig. 2: heuristic vs exact solver runtime and stretch",
     .tags = {"bench", "design", "solver", "sweep"},
     .params = {{"exact_time_limit_s", "60 (10 in fast mode)",
                 "branch-and-bound time limit per instance"},
                {"max_exact_cities", "12 (8 in fast mode)",
                 "largest instance handed to the exact solver"}}},
    run};

}  // namespace
