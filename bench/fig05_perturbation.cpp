// Fig. 5: packet-level behaviour under population perturbations. The
// network is designed and provisioned for the population-product traffic
// matrix; each run then perturbs every city's population by U[1-g, 1+g]
// and sweeps the aggregate input rate. Mean delay stays nearly flat and
// loss stays ~0 up to ~70% load even for large perturbations.
//
// The load x gamma grid runs as an engine sweep: every cell builds its own
// simulator instance, so cells are independent and the ResultSet is
// identical for any --threads value.

#include "bench_common.hpp"

namespace {
using namespace cisp;

/// Population-product traffic with per-center weight perturbation.
std::vector<std::vector<double>> perturbed_traffic(
    const std::vector<infra::PopulationCenter>& centers, double gamma,
    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> weight(centers.size());
  for (std::size_t i = 0; i < centers.size(); ++i) {
    weight[i] = static_cast<double>(centers[i].population) *
                rng.uniform(1.0 - gamma, 1.0 + gamma);
  }
  const std::size_t n = centers.size();
  std::vector<std::vector<double>> h(n, std::vector<double>(n, 0.0));
  double max_entry = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) {
        h[i][j] = weight[i] * weight[j];
        max_entry = std::max(max_entry, h[i][j]);
      }
    }
  }
  for (auto& row : h) {
    for (double& v : row) v /= max_entry;
  }
  return h;
}

struct Cell {
  double delay_ms = 0.0;
  double loss_pct = 0.0;
};

engine::ResultSet run(const engine::ExperimentContext& ctx) {
  design::ScenarioOptions options;
  const auto backend = bench::traffic_backend(ctx);
  const std::size_t max_centers = ctx.fast ? 30 : 60;
  const auto scenario = bench::us_scenario(ctx, options);
  const auto problem = design::city_city_problem(scenario, 3000.0, max_centers);
  const auto topo = design::solve_greedy(problem.input);
  design::CapacityParams cap;
  cap.aggregate_gbps = 100.0;
  const auto plan = design::plan_capacity(problem.input, topo, problem.links,
                                          scenario.tower_graph.towers, cap);

  engine::ResultSet results;
  results.note("sim nodes=" + std::to_string(problem.sites.size()) +
               " mw_links=" + std::to_string(plan.links.size()) +
               " design stretch=" + fmt(topo.mean_stretch, 3));

  net::BuildOptions build;
  build.mw_queue_packets = 100;
  build.rate_scale = ctx.fast ? 0.02 : 0.05;
  const double sim_s = ctx.fast ? 0.15 : 0.4;

  std::vector<infra::PopulationCenter> centers = scenario.centers;
  if (centers.size() > max_centers) centers.resize(max_centers);

  std::vector<double> loads;
  for (int load = 10; load <= 130; load += 15) {
    loads.push_back(static_cast<double>(load));
  }
  const std::vector<double> gammas = {0.0, 0.1, 0.3, 0.5};

  engine::Grid grid;
  grid.axis("load", loads).axis("gamma", gammas);
  const auto sweep = engine::run_sweep(
      grid,
      [&](const engine::Point& point) {
        const double load = point.value("load");
        const double gamma = point.value("gamma");
        // Seeds match the historical serial loop (1000 + gamma index) so
        // the table reproduces the original figure exactly.
        const auto traffic =
            gamma == 0.0 ? infra::population_product_traffic(centers)
                         : perturbed_traffic(centers, gamma,
                                             1000 + point.index("gamma"));
        bench::TrafficCell spec;
        spec.aggregate_gbps = cap.aggregate_gbps * load / 100.0;
        spec.sim_s = sim_s;
        spec.seed = 77;
        const auto stats = bench::run_traffic_cell(
            backend, problem.input, plan, build, traffic, spec);
        Cell cell;
        cell.delay_ms = stats.mean_delay_s * 1000.0;
        cell.loss_pct = stats.loss_rate * 100.0;
        return cell;
      },
      {.threads = ctx.threads});

  auto& delay_table = results.add_table(
      "fig05_delay", "Fig 5 (left): mean one-way delay (ms) vs load",
      {"load_%", "matching_TM", "gamma_0.1", "gamma_0.3", "gamma_0.5"});
  auto& loss_table = results.add_table(
      "fig05_loss", "Fig 5 (right): loss rate (%) vs load",
      {"load_%", "matching_TM", "gamma_0.1", "gamma_0.3", "gamma_0.5"});
  for (std::size_t l = 0; l < loads.size(); ++l) {
    std::vector<engine::Value> delay_row = {static_cast<int>(loads[l])};
    std::vector<engine::Value> loss_row = delay_row;
    for (std::size_t g = 0; g < gammas.size(); ++g) {
      const Cell& cell = sweep.at(l * gammas.size() + g);
      delay_row.push_back(engine::Value::real(cell.delay_ms, 3));
      loss_row.push_back(engine::Value::real(cell.loss_pct, 3));
    }
    delay_table.row(delay_row);
    loss_table.row(loss_row);
  }
  results.note(
      "Paper shape: delay moves by well under a millisecond and loss stays "
      "~0 until\nthe load approaches the provisioned capacity; loss then "
      "rises. Our k^2\nprovisioning leaves slightly more headroom than the "
      "paper's, so the onset\nsits near/above 100% rather than the paper's "
      "~70-85%.");
  return results;
}

const engine::RegisterExperiment kRegistration{
    {.name = "fig05_perturbation",
     .description = "Fig. 5: delay/loss vs load under traffic perturbation",
     .tags = {"bench", "simulation", "sweep"},
     .params = {bench::traffic_backend_param()}},
    run};

}  // namespace
