// Fig. 11 + §6.4: traffic-mix mismatch. A cISP designed and provisioned
// for a city-city : city-DC : DC-DC blend of 4:3:3 is loaded with
// deviating mixes (5:3:3, 4:3:4, 4:4:3). Mean delay moves by <0.05 ms and
// loss stays ~0 up to ~70% of design capacity.
//
// Registered experiment: the load x mix grid executes through
// engine::run_sweep — each cell builds its own simulator over the shared
// 4:3:3 design, with per-mix traffic matrices precomputed once.

#include "bench_common.hpp"

namespace {
using namespace cisp;

struct Cell {
  double delay_ms = 0.0;
  double loss_pct = 0.0;
};

engine::ResultSet run(const engine::ExperimentContext& ctx) {
  const auto scenario = bench::us_scenario(ctx);
  const auto backend = bench::traffic_backend(ctx);
  const auto centers = static_cast<std::size_t>(
      ctx.params.integer("centers", bench::pick(ctx, 50, 25)));
  const double budget = ctx.params.real("budget", 3000.0);

  // Design for 4:3:3.
  const auto designed =
      design::mixed_problem(scenario, budget, 4.0, 3.0, 3.0, centers);
  const auto topo = design::solve_greedy(designed.input);
  design::CapacityParams cap;
  cap.aggregate_gbps = 100.0;
  const auto plan = design::plan_capacity(designed.input, topo, designed.links,
                                          scenario.tower_graph.towers, cap);

  engine::ResultSet results;
  results.note("design: stretch=" + fmt(topo.mean_stretch, 3) +
               " mw_links=" + std::to_string(plan.links.size()));

  net::BuildOptions build;
  build.mw_queue_packets = 100;
  build.rate_scale = bench::pick(ctx, 0.05, 0.02);
  const double sim_s = bench::pick(ctx, 0.4, 0.15);

  struct Mix {
    const char* name;
    double cc, cd, dd;
  };
  const std::vector<Mix> mixes = {
      {"4:3:3", 4, 3, 3}, {"4:4:3", 4, 4, 3}, {"5:3:3", 5, 3, 3},
      {"4:3:4", 4, 3, 4}};

  // Traffic matrix per mix over the SAME sites as the design, computed
  // once outside the sweep (each one is a full problem construction).
  std::vector<std::vector<std::vector<double>>> mix_traffic;
  for (const auto& mix : mixes) {
    const auto mixed = design::mixed_problem(scenario, budget, mix.cc, mix.cd,
                                             mix.dd, centers);
    std::vector<std::vector<double>> traffic(
        designed.input.site_count(),
        std::vector<double>(designed.input.site_count(), 0.0));
    for (std::size_t i = 0; i < traffic.size(); ++i) {
      for (std::size_t j = 0; j < traffic.size(); ++j) {
        traffic[i][j] = mixed.input.traffic(i, j);
      }
    }
    mix_traffic.push_back(std::move(traffic));
  }

  std::vector<double> loads;
  for (int load = 10; load <= 130; load += 15) {
    loads.push_back(static_cast<double>(load));
  }

  engine::Grid grid;
  grid.axis("load", loads).index_axis("mix", mixes.size());
  const auto sweep = engine::run_sweep(
      grid,
      [&](const engine::Point& point) {
        const double load = point.value("load");
        bench::TrafficCell spec;
        spec.aggregate_gbps = cap.aggregate_gbps * load / 100.0;
        spec.sim_s = sim_s;
        spec.seed = 55;
        const auto stats = bench::run_traffic_cell(
            backend, designed.input, plan, build,
            mix_traffic[point.index("mix")], spec);
        return Cell{stats.mean_delay_s * 1000.0, stats.loss_rate * 100.0};
      },
      {.threads = ctx.threads});

  auto& delay_table = results.add_table(
      "fig11_delay", "Fig 11 (left): mean one-way delay (ms) vs load",
      {"load_%", "4:3:3", "4:4:3", "5:3:3", "4:3:4"});
  auto& loss_table = results.add_table(
      "fig11_loss", "Fig 11 (right): loss rate (%) vs load",
      {"load_%", "4:3:3", "4:4:3", "5:3:3", "4:3:4"});
  for (std::size_t l = 0; l < loads.size(); ++l) {
    std::vector<engine::Value> delay_row = {static_cast<int>(loads[l])};
    std::vector<engine::Value> loss_row = delay_row;
    for (std::size_t m = 0; m < mixes.size(); ++m) {
      const Cell& cell = sweep.at(l * mixes.size() + m);
      delay_row.push_back(engine::Value::real(cell.delay_ms, 3));
      loss_row.push_back(engine::Value::real(cell.loss_pct, 3));
    }
    delay_table.row(delay_row);
    loss_table.row(loss_row);
  }
  results.note(
      "Paper shape: across mixes the delay curves sit within a few "
      "hundredths of a\nmillisecond of each other until ~70% load; "
      "city-city deviations (5:3:3)\nmatter most.");
  return results;
}

const engine::RegisterExperiment kRegistration{
    {.name = "fig11_traffic_mix",
     .description = "Fig. 11 / §6.4: delay/loss under traffic-mix deviation",
     .tags = {"bench", "simulation", "sweep"},
     .params = {{"budget", "3000", "tower budget for the design"},
                {"centers", "50 (25 in fast mode)",
                 "population centers in the design problem"},
                bench::traffic_backend_param()}},
    run};

}  // namespace
