// Fig. 11 + §6.4: traffic-mix mismatch. A cISP designed and provisioned
// for a city-city : city-DC : DC-DC blend of 4:3:3 is loaded with
// deviating mixes (5:3:3, 4:3:4, 4:4:3). Mean delay moves by <0.05 ms and
// loss stays ~0 up to ~70% of design capacity.

#include "bench_common.hpp"

int main() {
  using namespace cisp;
  bench::banner("fig11_traffic_mix", "Fig. 11 delay/loss under mix deviation");

  const auto scenario = bench::us_scenario();
  const std::size_t centers = bench::maybe_fast(50, 25);
  const double budget = 3000.0;

  // Design for 4:3:3.
  const auto designed =
      design::mixed_problem(scenario, budget, 4.0, 3.0, 3.0, centers);
  const auto topo = design::solve_greedy(designed.input);
  design::CapacityParams cap;
  cap.aggregate_gbps = 100.0;
  const auto plan = design::plan_capacity(designed.input, topo, designed.links,
                                          scenario.tower_graph.towers, cap);
  std::cout << "design: stretch=" << fmt(topo.mean_stretch, 3)
            << " mw_links=" << plan.links.size() << "\n\n";

  net::BuildOptions build;
  build.mw_queue_packets = 100;
  build.rate_scale = bench::maybe_fast(0.05, 0.02);
  const double sim_s = bench::maybe_fast(0.4, 0.15);

  struct Mix {
    const char* name;
    double cc, cd, dd;
  };
  const std::vector<Mix> mixes = {
      {"4:3:3", 4, 3, 3}, {"4:4:3", 4, 4, 3}, {"5:3:3", 5, 3, 3},
      {"4:3:4", 4, 3, 4}};

  Table delay_table("Fig 11 (left): mean one-way delay (ms) vs load",
                    {"load_%", "4:3:3", "4:4:3", "5:3:3", "4:3:4"});
  Table loss_table("Fig 11 (right): loss rate (%) vs load",
                   {"load_%", "4:3:3", "4:4:3", "5:3:3", "4:3:4"});
  for (int load = 10; load <= 130; load += 15) {
    std::vector<std::string> delay_row = {std::to_string(load)};
    std::vector<std::string> loss_row = {std::to_string(load)};
    for (const auto& mix : mixes) {
      // Traffic matrix for this mix over the SAME sites as the design.
      const auto mixed = design::mixed_problem(scenario, budget, mix.cc,
                                               mix.cd, mix.dd, centers);
      std::vector<std::vector<double>> traffic(
          designed.input.site_count(),
          std::vector<double>(designed.input.site_count(), 0.0));
      for (std::size_t i = 0; i < traffic.size(); ++i) {
        for (std::size_t j = 0; j < traffic.size(); ++j) {
          traffic[i][j] = mixed.input.traffic(i, j);
        }
      }
      auto instance = net::build_sim(designed.input, plan, build);
      const auto demands = net::demands_from_traffic(
          traffic, cap.aggregate_gbps * load / 100.0, build.rate_scale);
      net::install_routes(*instance.network, instance.view, demands,
                          net::RoutingScheme::ShortestPath);
      const auto sources =
          net::attach_udp_workload(instance, demands, 0.0, sim_s, 55);
      instance.sim->run_until(sim_s + 0.2);
      delay_row.push_back(fmt(instance.monitor.mean_delay_s() * 1000.0, 3));
      loss_row.push_back(fmt(instance.monitor.loss_rate() * 100.0, 3));
    }
    delay_table.add_row(delay_row);
    loss_table.add_row(loss_row);
  }
  delay_table.print(std::cout);
  loss_table.print(std::cout);
  delay_table.maybe_write_csv("fig11_delay");
  loss_table.maybe_write_csv("fig11_loss");
  std::cout << "\nPaper shape: across mixes the delay curves sit within a "
               "few hundredths of a\nmillisecond of each other until ~70% "
               "load; city-city deviations (5:3:3)\nmatter most.\n";
  return 0;
}
