// Fig. 4(b): stretch of successive tower-disjoint purely-MW paths for the
// long transcontinental link (the paper's red Illinois-California link).
// After 20 rounds of removing every used tower, stretch stays far below
// the fiber route's inflation.

#include "bench_common.hpp"

namespace {
using namespace cisp;

engine::ResultSet run(const engine::ExperimentContext& ctx) {
  const auto scenario = bench::us_scenario(ctx);
  // The paper's link runs ~2,700 km from Illinois to California.
  const geo::LatLon chicago{41.88, -87.63};
  const geo::LatLon los_angeles{34.05, -118.24};
  const double geodesic = geo::distance_km(chicago, los_angeles);

  const auto iterations = static_cast<std::size_t>(
      ctx.params.integer("iterations", bench::pick(ctx, 20, 8)));
  const auto lengths = design::tower_disjoint_path_lengths(
      scenario.tower_graph, chicago, los_angeles, iterations);

  // Fiber reference between the same endpoints.
  const auto problem = design::city_city_problem(scenario, 0.0);
  std::size_t chi = 0;
  std::size_t la = 0;
  for (std::size_t i = 0; i < problem.names.size(); ++i) {
    if (problem.names[i] == "Chicago IL") chi = i;
    if (problem.names[i] == "Los Angeles CA") la = i;
  }
  const double fiber_stretch =
      problem.input.fiber_effective_km(chi, la) /
      problem.input.geodesic_km(chi, la);

  engine::ResultSet results;
  auto& table = results.add_table(
      "fig04b_disjoint_paths", "Fig 4(b): stretch of k-th tower-disjoint MW path",
      {"iteration", "path_km", "stretch_over_geodesic"});
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    table.row({i + 1, engine::Value::real(lengths[i], 0),
               engine::Value::real(lengths[i] / geodesic, 3)});
  }
  results.note("geodesic = " + fmt(geodesic, 0) +
               " km; fiber latency stretch for the same pair = " +
               fmt(fiber_stretch, 2) +
               " (paper: 1.75)\nPaper shape: the first path is ~1.02x; "
               "stretch grows slowly with disjointness\nand even the last "
               "path beats fiber by a wide margin.");
  return results;
}

const engine::RegisterExperiment kRegistration{
    {.name = "fig04b_disjoint_paths",
     .description = "Fig. 4(b): tower-disjoint MW paths, IL-CA",
     .tags = {"bench", "design", "resilience"},
     .params = {{"iterations", "20 (8 in fast mode)",
                 "rounds of disjoint-path removal"}}},
    run};

}  // namespace
