// Cross-module integration tests: the designed topology's predicted
// latencies must match what packets actually experience in the simulator;
// the weather study must be consistent with the outage model; and the full
// public API must compose the way the examples and benches use it.

#include <gtest/gtest.h>

#include <algorithm>

#include "cisp.hpp"

namespace cisp {
namespace {

/// Shared coarse scenario (built once for the whole file).
const design::Scenario& scenario() {
  static const design::Scenario s = [] {
    design::ScenarioOptions options;
    options.fast = true;
    options.top_cities = 50;
    return design::build_us_scenario(options);
  }();
  return s;
}

struct Designed {
  design::SiteProblem problem;
  design::Topology topology;
  design::CapacityPlan plan;
};

const Designed& designed() {
  static const Designed d = [] {
    auto problem = design::city_city_problem(scenario(), 800.0, 20);
    auto topology = design::solve_greedy(problem.input);
    design::CapacityParams cap;
    cap.aggregate_gbps = 50.0;
    auto plan = design::plan_capacity(problem.input, topology, problem.links,
                                      scenario().tower_graph.towers, cap);
    return Designed{std::move(problem), std::move(topology), std::move(plan)};
  }();
  return d;
}

TEST(Integration, SimulatedDelaysMatchDesignPredictions) {
  const auto& d = designed();
  net::BuildOptions build;
  build.rate_scale = 0.02;
  auto instance = net::build_sim(d.problem.input, d.plan, build);

  // Low load so queueing is negligible: measured one-way delay per flow
  // must equal the design's effective-km latency within the fiber-mesh
  // sparsification tolerance.
  std::vector<infra::PopulationCenter> centers = scenario().centers;
  centers.resize(20);
  const auto traffic = infra::population_product_traffic(centers);
  const auto demands = net::demands_from_traffic(traffic, 5.0, build.rate_scale);
  net::install_routes(*instance.network, instance.view, demands,
                      net::RoutingScheme::ShortestPath);
  const auto sources =
      net::attach_udp_workload(instance, demands, 0.0, 0.2, 11);
  instance.sim->run_until(0.5);

  design::StretchEvaluator eval(d.problem.input);
  for (const std::size_t l : d.topology.links) eval.add_link(l);

  std::size_t checked = 0;
  for (const auto& [flow_id, stats] : instance.monitor.flows()) {
    if (stats.received_packets < 10) continue;
    const auto& demand = demands[flow_id];
    const double predicted_ms =
        geo::c_latency_for_km(eval.effective_km(demand.src, demand.dst));
    const double measured_ms = stats.delay_s.mean() * 1000.0;
    // Fiber mesh sparsification + serialization allow a few percent.
    EXPECT_GT(measured_ms, predicted_ms * 0.99) << flow_id;
    EXPECT_LT(measured_ms, predicted_ms * 1.12 + 0.3) << flow_id;
    ++checked;
  }
  EXPECT_GT(checked, 50u);
}

TEST(Integration, MwLinksCarryTheLatencySensitiveShare) {
  const auto& d = designed();
  // The capacity plan's MW share and the evaluator's MW-win share must
  // agree: pairs whose effective km beat fiber are exactly those routed
  // over at least one MW link.
  design::StretchEvaluator eval(d.problem.input);
  for (const std::size_t l : d.topology.links) eval.add_link(l);
  const auto& input = d.problem.input;
  double mw_share = 0.0;
  double total = 0.0;
  for (std::size_t s = 0; s < input.site_count(); ++s) {
    for (std::size_t t = 0; t < input.site_count(); ++t) {
      if (s == t) continue;
      total += input.traffic(s, t);
      if (eval.effective_km(s, t) < input.fiber_effective_km(s, t) - 1e-9) {
        mw_share += input.traffic(s, t);
      }
    }
  }
  const double plan_share = d.plan.routed_on_mw_gbps / d.plan.aggregate_gbps;
  EXPECT_NEAR(mw_share / total, plan_share, 0.02);
}

TEST(Integration, WeatherStudyConsistentWithOutageModel) {
  const auto& d = designed();
  const weather::RainField rain(scenario().region.box);
  weather::StudyParams params;
  params.days = 60;
  const auto result = weather::run_weather_study(
      d.problem, d.topology, scenario().tower_graph.towers, rain, params);
  // Best-day stretch equals the fair-weather design stretch per pair:
  // its traffic-weighted analogue cannot beat the designed topology.
  design::StretchEvaluator eval(d.problem.input);
  for (const std::size_t l : d.topology.links) eval.add_link(l);
  Samples fair;
  const std::size_t n = d.problem.input.site_count();
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t t = s + 1; t < n; ++t) {
      fair.add(eval.pair_stretch(s, t));
    }
  }
  // The best day across the year should match fair weather closely.
  EXPECT_NEAR(result.best_stretch.median(), fair.median(), 0.02);
  // And no weather sample can beat fair weather.
  EXPECT_GE(result.best_stretch.min(), fair.min() - 1e-9);
}

TEST(Integration, EndToEndPublicApiComposition) {
  // The quickstart flow, condensed: every public piece composes.
  const auto& d = designed();
  EXPECT_GT(d.topology.links.size(), 5u);
  EXPECT_LT(d.topology.mean_stretch, 1.6);
  const auto cost = design::cost_of(d.plan);
  EXPECT_GT(cost.usd_per_gb, 0.01);
  EXPECT_LT(cost.usd_per_gb, 10.0);
  // Apps layer consumes design latencies.
  const double rtt_ms =
      2.0 * geo::c_latency_for_km(d.problem.input.fiber_effective_km(0, 1));
  const auto frame = apps::augmented_frame_time(rtt_ms * 3.0);
  EXPECT_GT(frame.mean_ms, 0.0);
}

}  // namespace
}  // namespace cisp
