// Validation against the real-world anchor points the paper cites:
// - §2/§3.1: McKay Brothers' Chicago-NJ HFT relay — ~1,183 km, ~20
//   line-of-sight hops, end-to-end within 1% of c-latency, including a
//   96 km hop over Lake Michigan (Chicago -> Galien, MI).
// - §3.3: the parallel-series geometry numbers (100 km hops need ~10.6 km
//   series separation; 10 km divergence on a 500 km link costs ~0.2%).

#include <gtest/gtest.h>

#include "design/link_engineering.hpp"
#include "design/parallel_series.hpp"
#include "design/scenario.hpp"
#include "geo/geodesic.hpp"
#include "rf/fresnel.hpp"
#include "terrain/profile.hpp"
#include "util/error.hpp"

namespace cisp::design {
namespace {

TEST(ParallelSeries, PaperSeparationNumber) {
  // Paper: "for a tower-tower hop distance of 100 km, the minimum distance
  // between two parallel towers should be 100 * tan(6 deg) = 10.6 km".
  EXPECT_NEAR(min_series_separation_km(100.0), 10.51, 0.15);
}

TEST(ParallelSeries, PaperDivergenceNumber) {
  // Paper: "for a 500 km long cISP link, the midpoint diverging 10 km from
  // the geodesic would increase latency by a negligible 0.2%".
  const double stretch = lateral_divergence_stretch(500.0, 10.0);
  EXPECT_NEAR((stretch - 1.0) * 100.0, 0.08, 0.13);  // ~0.1-0.2%
  EXPECT_LT(stretch, 1.002);
}

TEST(ParallelSeries, SeriesBandsMatchPaper) {
  // "< 1 Gbps: one series; 1-4 Gbps: 2; 4-9 Gbps: 3".
  EXPECT_EQ(series_for_demand(0.5, 1.0), 1);
  EXPECT_EQ(series_for_demand(1.0, 1.0), 1);
  EXPECT_EQ(series_for_demand(1.5, 1.0), 2);
  EXPECT_EQ(series_for_demand(4.0, 1.0), 2);
  EXPECT_EQ(series_for_demand(4.1, 1.0), 3);
  EXPECT_EQ(series_for_demand(9.0, 1.0), 3);
  EXPECT_EQ(series_for_demand(9.5, 1.0), 4);
  EXPECT_DOUBLE_EQ(bandwidth_of_series(3, 1.0), 9.0);
}

TEST(ParallelSeries, OutermostOffsetGrowsWithK) {
  EXPECT_DOUBLE_EQ(outermost_offset_km(1, 100.0), 0.0);
  const double k3 = outermost_offset_km(3, 100.0);
  const double k8 = outermost_offset_km(8, 100.0);
  EXPECT_GT(k3, 10.0);
  EXPECT_GT(k8, k3);
  // Even 8 series diverge by tens of km — negligible on long links,
  // exactly the paper's argument for 1 Tbps provisioning.
  EXPECT_LT(lateral_divergence_stretch(2700.0, k8), 1.01);
}

TEST(ParallelSeries, InputValidation) {
  EXPECT_THROW(min_series_separation_km(0.0), cisp::Error);
  EXPECT_THROW(lateral_divergence_stretch(-1.0, 0.0), cisp::Error);
  EXPECT_THROW(series_for_demand(1.0, 0.0), cisp::Error);
  EXPECT_THROW(bandwidth_of_series(0, 1.0), cisp::Error);
}

class HftRelayValidation : public ::testing::Test {
 protected:
  static const Scenario& scenario() {
    static const Scenario s = [] {
      ScenarioOptions options;
      options.fast = true;
      options.top_cities = 80;
      // Denser corridors approximate the purpose-built HFT relay route.
      options.towers.corridor_towers_per_100km = 8.0;
      return build_us_scenario(options);
    }();
    return s;
  }
};

TEST_F(HftRelayValidation, ChicagoToNewJerseyRelayShape) {
  // McKay Brothers operate Aurora IL -> Carteret NJ at ~1,183 km total
  // with ~20 hops, within 1% of c end to end (application layer).
  const geo::LatLon aurora_il{41.76, -88.32};
  const geo::LatLon carteret_nj{40.58, -74.23};
  const double geodesic = geo::distance_km(aurora_il, carteret_nj);
  EXPECT_NEAR(geodesic, 1160.0, 40.0);  // the real relay is ~1,183 km

  const auto links =
      engineer_links(scenario().tower_graph, {aurora_il, carteret_nj});
  ASSERT_TRUE(links[0].feasible);
  // Path within a few percent of the geodesic (the real relay: <1% with
  // hand-picked towers; our registry is synthetic and coarser).
  EXPECT_LT(links[0].mw_km / geodesic, 1.06);
  // Hop count in the right regime (real: ~20 hops of ~60 km).
  EXPECT_GE(links[0].tower_path.size(), 12u);
  EXPECT_LE(links[0].tower_path.size(), 45u);
}

TEST_F(HftRelayValidation, LakeMichiganHopIsFeasible) {
  // The paper cites a 96 km operating hop Chicago -> Galien MI crossing
  // Lake Michigan: our clearance model must admit ~96 km hops given tall
  // towers and flat terrain.
  const geo::LatLon chicago{41.88, -87.62};
  const geo::LatLon galien{41.81, -86.47};
  EXPECT_NEAR(geo::distance_km(chicago, galien), 96.0, 3.0);
  const auto profile =
      terrain::build_profile(*scenario().raster, chicago, galien, 1.0);
  // Mast heights in the real deployment are large (~150-250 m AGL
  // equivalents including buildings).
  const auto clearance = rf::evaluate_clearance(profile, 220.0, 180.0);
  EXPECT_TRUE(clearance.clear)
      << "margin " << clearance.margin_m << " m";
}

TEST_F(HftRelayValidation, RelayLatencyWithinOnePercentOfC) {
  const geo::LatLon aurora_il{41.76, -88.32};
  const geo::LatLon carteret_nj{40.58, -74.23};
  const auto links =
      engineer_links(scenario().tower_graph, {aurora_il, carteret_nj});
  ASSERT_TRUE(links[0].feasible);
  const double relay_ms = geo::c_latency_for_km(links[0].mw_km);
  const double c_ms = geo::c_latency_ms(aurora_il, carteret_nj);
  // Propagation-only latency within ~5% of c-latency (the real relay
  // achieves <1% with years of route refinement; §6.5 notes our kind of
  // estimate is accurate on cost/latency, not fully engineered routes).
  EXPECT_LT(relay_ms / c_ms, 1.06);
  // And the fiber alternative is ~2x: the HFT industry's whole reason.
  const infra::FiberNetwork fiber({aurora_il, carteret_nj});
  EXPECT_GT(fiber.latency_ms(0, 1) / c_ms, 1.5);
}

}  // namespace
}  // namespace cisp::design
