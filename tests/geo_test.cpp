// Unit and property tests for src/geo: geodesic arithmetic against known
// city distances, great-circle interpolation invariants, latency helpers,
// and the spatial index.

#include <gtest/gtest.h>

#include "geo/geodesic.hpp"
#include "geo/latlon.hpp"
#include "geo/spatial_index.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace cisp::geo {
namespace {

const LatLon kNyc{40.7128, -74.0060};
const LatLon kChicago{41.8781, -87.6298};
const LatLon kLa{34.0522, -118.2437};
const LatLon kLondon{51.5074, -0.1278};

TEST(Geodesic, KnownCityDistances) {
  // Reference great-circle distances (±1% tolerance).
  EXPECT_NEAR(distance_km(kNyc, kChicago), 1145.0, 15.0);
  EXPECT_NEAR(distance_km(kNyc, kLa), 3936.0, 40.0);
  EXPECT_NEAR(distance_km(kNyc, kLondon), 5570.0, 56.0);
}

TEST(Geodesic, SymmetricAndIdentity) {
  EXPECT_DOUBLE_EQ(distance_km(kNyc, kChicago), distance_km(kChicago, kNyc));
  EXPECT_DOUBLE_EQ(distance_km(kNyc, kNyc), 0.0);
}

TEST(Geodesic, TriangleInequalityProperty) {
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const LatLon a{rng.uniform(25.0, 49.0), rng.uniform(-124.0, -67.0)};
    const LatLon b{rng.uniform(25.0, 49.0), rng.uniform(-124.0, -67.0)};
    const LatLon c{rng.uniform(25.0, 49.0), rng.uniform(-124.0, -67.0)};
    EXPECT_LE(distance_km(a, c),
              distance_km(a, b) + distance_km(b, c) + 1e-6);
  }
}

TEST(Geodesic, CLatencyMatchesHandComputation) {
  // 2998 km at c is ~10 ms one way.
  EXPECT_NEAR(c_latency_for_km(2997.92458), 10.0, 1e-9);
  EXPECT_NEAR(c_latency_ms(kNyc, kChicago),
              distance_km(kNyc, kChicago) / 299792.458 * 1000.0, 1e-12);
}

TEST(Geodesic, FiberLatencyIsFiftyPercentSlower) {
  EXPECT_NEAR(fiber_latency_for_km(1000.0) / c_latency_for_km(1000.0), 1.5,
              1e-12);
}

TEST(Geodesic, InterpolateEndpointsExact) {
  const LatLon p0 = interpolate(kNyc, kLa, 0.0);
  const LatLon p1 = interpolate(kNyc, kLa, 1.0);
  EXPECT_NEAR(distance_km(p0, kNyc), 0.0, 1e-6);
  EXPECT_NEAR(distance_km(p1, kLa), 0.0, 1e-6);
}

TEST(Geodesic, InterpolateMidpointEquidistant) {
  const LatLon mid = interpolate(kNyc, kLa, 0.5);
  EXPECT_NEAR(distance_km(kNyc, mid), distance_km(mid, kLa), 1e-6);
}

TEST(Geodesic, InterpolateLiesOnGreatCircleProperty) {
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const LatLon a{rng.uniform(-60.0, 60.0), rng.uniform(-170.0, 170.0)};
    const LatLon b{rng.uniform(-60.0, 60.0), rng.uniform(-170.0, 170.0)};
    const double f = rng.uniform();
    const LatLon m = interpolate(a, b, f);
    // Along-path additivity: d(a,m) + d(m,b) == d(a,b).
    EXPECT_NEAR(distance_km(a, m) + distance_km(m, b), distance_km(a, b),
                1e-6);
    // Fractional position matches f.
    if (distance_km(a, b) > 1.0) {
      EXPECT_NEAR(distance_km(a, m) / distance_km(a, b), f, 1e-9);
    }
  }
}

TEST(Geodesic, DestinationRoundTripProperty) {
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    const LatLon origin{rng.uniform(-60.0, 60.0), rng.uniform(-170.0, 170.0)};
    const double bearing = rng.uniform(0.0, 360.0);
    const double dist = rng.uniform(1.0, 2000.0);
    const LatLon dest = destination(origin, bearing, dist);
    EXPECT_NEAR(distance_km(origin, dest), dist, dist * 1e-9 + 1e-6);
  }
}

TEST(Geodesic, BearingCardinalDirections) {
  const LatLon origin{40.0, -100.0};
  EXPECT_NEAR(initial_bearing_deg(origin, {45.0, -100.0}), 0.0, 0.1);
  EXPECT_NEAR(initial_bearing_deg(origin, {35.0, -100.0}), 180.0, 0.1);
  EXPECT_NEAR(initial_bearing_deg(origin, {40.0, -95.0}), 90.0, 2.0);
}

TEST(Geodesic, SamplePathEndpointsAndSpacing) {
  const auto path = sample_path(kNyc, kChicago, 50.0);
  ASSERT_GE(path.size(), 2u);
  EXPECT_NEAR(distance_km(path.front(), kNyc), 0.0, 1e-6);
  EXPECT_NEAR(distance_km(path.back(), kChicago), 0.0, 1e-6);
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_LE(distance_km(path[i - 1], path[i]), 50.0 + 1e-6);
  }
}

TEST(Geodesic, SamplePathRejectsBadStep) {
  EXPECT_THROW(sample_path(kNyc, kChicago, 0.0), Error);
}

TEST(LatLonValidate, RejectsOutOfRange) {
  EXPECT_NO_THROW(validate({45.0, -100.0}));
  EXPECT_THROW(validate({91.0, 0.0}), Error);
  EXPECT_THROW(validate({0.0, 181.0}), Error);
}

TEST(SpatialIndex, WithinFindsExactlyTheCloseOnes) {
  std::vector<LatLon> pts = {kNyc, kChicago, kLa, {40.73, -73.93}};
  SpatialIndex index(pts);
  const auto near_nyc = index.within(kNyc, 50.0);
  ASSERT_EQ(near_nyc.size(), 2u);  // NYC itself + the nearby point
  EXPECT_EQ(near_nyc[0], 0u);
  EXPECT_EQ(near_nyc[3 - 2], 3u);
}

TEST(SpatialIndex, WithinMatchesBruteForceProperty) {
  Rng rng(17);
  std::vector<LatLon> pts;
  for (int i = 0; i < 2000; ++i) {
    pts.push_back({rng.uniform(30.0, 45.0), rng.uniform(-110.0, -80.0)});
  }
  SpatialIndex index(pts);
  for (int q = 0; q < 50; ++q) {
    const LatLon center{rng.uniform(30.0, 45.0), rng.uniform(-110.0, -80.0)};
    const double radius = rng.uniform(10.0, 300.0);
    const auto got = index.within(center, radius);
    std::vector<std::size_t> want;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (distance_km(center, pts[i]) <= radius) want.push_back(i);
    }
    EXPECT_EQ(got, want);
  }
}

TEST(SpatialIndex, NearestMatchesBruteForce) {
  Rng rng(19);
  std::vector<LatLon> pts;
  for (int i = 0; i < 500; ++i) {
    pts.push_back({rng.uniform(30.0, 45.0), rng.uniform(-110.0, -80.0)});
  }
  SpatialIndex index(pts);
  for (int q = 0; q < 25; ++q) {
    const LatLon center{rng.uniform(30.0, 45.0), rng.uniform(-110.0, -80.0)};
    const std::size_t got = index.nearest(center);
    std::size_t want = 0;
    for (std::size_t i = 1; i < pts.size(); ++i) {
      if (distance_km(center, pts[i]) < distance_km(center, pts[want]))
        want = i;
    }
    EXPECT_EQ(got, want);
  }
}

TEST(SpatialIndex, EmptyIndexNearestReturnsSize) {
  SpatialIndex index({});
  EXPECT_EQ(index.nearest(kNyc), 0u);
}

}  // namespace
}  // namespace cisp::geo
