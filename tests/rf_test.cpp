// Unit and property tests for src/rf: Fresnel/bulge formulas against the
// paper's closed forms, clearance behaviour on synthetic profiles, ITU rain
// attenuation, and the fade-margin outage model.

#include <gtest/gtest.h>

#include <cmath>

#include "rf/fresnel.hpp"
#include "rf/link_budget.hpp"
#include "rf/rain.hpp"
#include "terrain/profile.hpp"
#include "util/error.hpp"

namespace cisp::rf {
namespace {

TEST(Fresnel, MidpointMatchesPaperFormula) {
  // Paper: hFres ~= 8.7 m * sqrt(D_km) / sqrt(f_GHz).
  for (double d : {10.0, 50.0, 100.0}) {
    for (double f : {6.0, 11.0, 18.0}) {
      const double expected = 8.7 * std::sqrt(d) / std::sqrt(f);
      EXPECT_NEAR(fresnel_radius_m(d / 2, d / 2, f), expected,
                  expected * 0.01);
    }
  }
}

TEST(Fresnel, ZeroAtEndpoints) {
  EXPECT_DOUBLE_EQ(fresnel_radius_m(0.0, 50.0, 11.0), 0.0);
  EXPECT_DOUBLE_EQ(fresnel_radius_m(50.0, 0.0, 11.0), 0.0);
}

TEST(Fresnel, MaximalAtMidpointProperty) {
  const double d = 80.0;
  const double mid = fresnel_radius_m(d / 2, d / 2, 11.0);
  for (double d1 : {5.0, 20.0, 30.0, 50.0, 70.0}) {
    EXPECT_LE(fresnel_radius_m(d1, d - d1, 11.0), mid + 1e-12);
  }
}

TEST(EarthBulge, MidpointMatchesPaperFormula) {
  // Paper: hEarth ~= D_km^2 / (50 K) meters at the midpoint.
  for (double d : {20.0, 60.0, 100.0}) {
    const double expected = d * d / (50.0 * 1.3);
    EXPECT_NEAR(earth_bulge_m(d / 2, d / 2, 1.3), expected, expected * 0.03);
  }
}

TEST(EarthBulge, HundredKmHopNeedsTallTowers) {
  // At D = 100 km and K = 1.3 the bulge alone is ~150 m: the reason the
  // paper's maximum range sits near 100 km.
  const double bulge = earth_bulge_m(50.0, 50.0, 1.3);
  EXPECT_GT(bulge, 140.0);
  EXPECT_LT(bulge, 165.0);
}

terrain::PathProfile flat_profile(double length_km, double ground_m,
                                  std::size_t samples) {
  terrain::PathProfile p;
  p.total_km = length_km;
  for (std::size_t i = 0; i < samples; ++i) {
    const double f = static_cast<double>(i) / static_cast<double>(samples - 1);
    p.dist_km.push_back(f * length_km);
    p.ground_m.push_back(ground_m);
    p.clutter_m.push_back(0.0);
  }
  return p;
}

TEST(Clearance, ShortHopClearsTallHopBlocked) {
  // 30 km flat hop with 60 m towers: bulge ~17 m + fresnel ~12 m -> clear.
  const auto short_hop = flat_profile(30.0, 100.0, 121);
  EXPECT_TRUE(evaluate_clearance(short_hop, 60.0, 60.0).clear);
  // 100 km flat hop with 60 m towers: bulge ~150 m -> blocked.
  const auto long_hop = flat_profile(100.0, 100.0, 401);
  EXPECT_FALSE(evaluate_clearance(long_hop, 60.0, 60.0).clear);
  // Same hop with 200 m towers: clear.
  EXPECT_TRUE(evaluate_clearance(long_hop, 200.0, 200.0).clear);
}

TEST(Clearance, ObstacleBlocksAndMarginLocalizesIt) {
  auto profile = flat_profile(40.0, 100.0, 161);
  profile.ground_m[80] += 120.0;  // a hill at the midpoint
  const auto result = evaluate_clearance(profile, 80.0, 80.0);
  EXPECT_FALSE(result.clear);
  EXPECT_EQ(result.critical_sample, 80u);
  EXPECT_LT(result.margin_m, 0.0);
}

TEST(Clearance, ClutterCounts) {
  auto profile = flat_profile(40.0, 100.0, 161);
  const auto without = evaluate_clearance(profile, 55.0, 55.0);
  for (auto& c : profile.clutter_m) c = 25.0;  // forest canopy everywhere
  const auto with = evaluate_clearance(profile, 55.0, 55.0);
  EXPECT_NEAR(without.margin_m - with.margin_m, 25.0, 1e-9);
}

TEST(Clearance, FresnelFractionRelaxes) {
  auto profile = flat_profile(60.0, 100.0, 241);
  profile.ground_m[120] += 55.0;
  ClearanceParams strict;  // full Fresnel zone
  ClearanceParams relaxed;
  relaxed.fresnel_fraction = 0.0;
  const auto s = evaluate_clearance(profile, 90.0, 90.0, strict);
  const auto r = evaluate_clearance(profile, 90.0, 90.0, relaxed);
  EXPECT_GT(r.margin_m, s.margin_m);
}

TEST(Clearance, AsymmetricTowersInterpolate) {
  const auto profile = flat_profile(50.0, 100.0, 201);
  const auto low_high = evaluate_clearance(profile, 20.0, 200.0);
  const auto high_low = evaluate_clearance(profile, 200.0, 20.0);
  EXPECT_NEAR(low_high.margin_m, high_low.margin_m, 1e-9);
}

TEST(Clearance, RequiresTwoSamples) {
  terrain::PathProfile p;
  p.total_km = 1.0;
  p.dist_km = {0.0};
  p.ground_m = {10.0};
  p.clutter_m = {0.0};
  EXPECT_THROW(evaluate_clearance(p, 10.0, 10.0), cisp::Error);
}

TEST(Rain, CoefficientsMatchItuTableAnchors) {
  const auto c10 = rain_coefficients(10.0);
  EXPECT_NEAR(c10.k, 0.01217, 1e-5);
  EXPECT_NEAR(c10.alpha, 1.2571, 1e-4);
  const auto c15 = rain_coefficients(15.0);
  EXPECT_NEAR(c15.k, 0.04481, 1e-5);
}

TEST(Rain, InterpolatedCoefficientsMonotone) {
  double prev_k = 0.0;
  for (double f = 6.0; f <= 20.0; f += 0.5) {
    const auto c = rain_coefficients(f);
    EXPECT_GT(c.k, prev_k);
    prev_k = c.k;
    EXPECT_GT(c.alpha, 0.9);
    EXPECT_LT(c.alpha, 1.7);
  }
}

TEST(Rain, SpecificAttenuationGrowsWithRateAndFrequency) {
  EXPECT_DOUBLE_EQ(specific_attenuation_db_per_km(0.0, 11.0), 0.0);
  EXPECT_LT(specific_attenuation_db_per_km(10.0, 11.0),
            specific_attenuation_db_per_km(50.0, 11.0));
  EXPECT_LT(specific_attenuation_db_per_km(50.0, 6.0),
            specific_attenuation_db_per_km(50.0, 18.0));
}

TEST(Rain, PathReductionShrinksLongHops) {
  EXPECT_GT(path_reduction_factor(5.0, 50.0),
            path_reduction_factor(100.0, 50.0));
  EXPECT_LE(path_reduction_factor(100.0, 50.0), 1.0);
  EXPECT_GT(path_reduction_factor(100.0, 50.0), 0.0);
}

TEST(Rain, RejectsOutOfBandFrequency) {
  EXPECT_THROW(rain_coefficients(1.0), cisp::Error);
  EXPECT_THROW(specific_attenuation_db_per_km(10.0, 150.0), cisp::Error);
}

TEST(Rain, MillimeterWaveBandsAttenuateMuchHarder) {
  // E-band rain attenuation dwarfs 11 GHz: the physical reason the MMW
  // technology profile (§3.4) is limited to short hops.
  const double mw = specific_attenuation_db_per_km(25.0, 11.0);
  const double mmw = specific_attenuation_db_per_km(25.0, 73.0);
  EXPECT_GT(mmw, 10.0 * mw);
  const auto c30 = rain_coefficients(30.0);
  EXPECT_NEAR(c30.k, 0.2403, 1e-4);
}

TEST(LinkBudget, MarginShrinksWithLength) {
  EXPECT_GT(fade_margin_db(10.0), fade_margin_db(50.0));
  EXPECT_GT(fade_margin_db(50.0), fade_margin_db(100.0));
  EXPECT_GE(fade_margin_db(500.0), LinkBudgetParams{}.min_margin_db);
}

TEST(LinkBudget, LightRainNeverBreaksHeavyRainBreaksLongHops) {
  EXPECT_FALSE(hop_fails_in_rain(50.0, 5.0));   // drizzle
  EXPECT_FALSE(hop_fails_in_rain(100.0, 5.0));
  EXPECT_TRUE(hop_fails_in_rain(100.0, 120.0));  // violent thunderstorm
}

TEST(LinkBudget, OutageThresholdMonotoneInLength) {
  // Longer hops must fail at lower rain rates.
  const double r20 = outage_rain_rate_mm_h(20.0);
  const double r60 = outage_rain_rate_mm_h(60.0);
  const double r100 = outage_rain_rate_mm_h(100.0);
  EXPECT_GE(r20, r60);
  EXPECT_GE(r60, r100);
  // And the threshold is consistent with the failure predicate.
  EXPECT_TRUE(hop_fails_in_rain(100.0, r100 * 1.05));
  EXPECT_FALSE(hop_fails_in_rain(100.0, r100 * 0.95));
}

}  // namespace
}  // namespace cisp::rf
