// Tests for the perf trajectory gate (src/obs/bench.hpp): BENCH json
// round-trips, comparator classification against synthetic baselines
// (regressed / improved / unchanged / missing / added kernels), and the
// `cisp_experiments perf` compare-only CLI including the --warn-only soft
// gate that CI uses.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/runner.hpp"
#include "obs/bench.hpp"
#include "util/error.hpp"

namespace cisp::obs {
namespace {

BenchReport make_report(std::vector<BenchEntry> entries) {
  BenchReport report;
  report.build = "testbuild";
  report.fast = true;
  report.threads = 2;
  report.entries = std::move(entries);
  return report;
}

std::string to_json(const BenchReport& report) {
  std::ostringstream os;
  write_bench_json(os, report);
  return os.str();
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

TEST(BenchJson, RoundTripsExactly) {
  const BenchReport report = make_report({{"dijkstra_1k", 1234.5, 1000},
                                          {"greedy_solver", 9.875e6, 12}});
  const BenchReport parsed = parse_bench_json(to_json(report));
  EXPECT_EQ(parsed.schema, kBenchSchema);
  EXPECT_EQ(parsed.build, "testbuild");
  EXPECT_TRUE(parsed.fast);
  EXPECT_EQ(parsed.threads, 2u);
  ASSERT_EQ(parsed.entries.size(), 2u);
  EXPECT_EQ(parsed.entries[0].name, "dijkstra_1k");
  EXPECT_NEAR(parsed.entries[0].ns_per_op, 1234.5, 1e-3);
  EXPECT_EQ(parsed.entries[0].reps, 1000u);
  EXPECT_EQ(parsed.entries[1].name, "greedy_solver");
  EXPECT_NEAR(parsed.entries[1].ns_per_op, 9.875e6, 1.0);
}

TEST(BenchJson, RejectsWrongSchemaAndGarbage) {
  EXPECT_THROW((void)parse_bench_json("{\"schema\": \"other-v9\"}"),
               cisp::Error);
  EXPECT_THROW((void)parse_bench_json("not json at all"), cisp::Error);
  EXPECT_THROW((void)parse_bench_json(""), cisp::Error);
}

TEST(BenchJson, IgnoresUnknownKeysForForwardCompat) {
  const std::string json =
      "{\"schema\": \"cisp-bench-v1\", \"build\": \"b\", \"fast\": false,\n"
      " \"threads\": 0, \"future_field\": {\"nested\": [1, 2, {\"x\": 3}]},\n"
      " \"entries\": [{\"name\": \"k\", \"ns_per_op\": 10.0, \"reps\": 5,\n"
      "               \"future_note\": \"ignored\"}]}";
  const BenchReport parsed = parse_bench_json(json);
  ASSERT_EQ(parsed.entries.size(), 1u);
  EXPECT_EQ(parsed.entries[0].name, "k");
}

// ---------------------------------------------------------------------------
// Comparator
// ---------------------------------------------------------------------------

TEST(BenchCompare, ClassifiesEveryStatus) {
  const BenchReport baseline = make_report({{"regressed", 100.0, 1},
                                            {"improved", 100.0, 1},
                                            {"unchanged", 100.0, 1},
                                            {"vanished", 100.0, 1}});
  const BenchReport current = make_report({{"regressed", 125.0, 1},
                                           {"improved", 50.0, 1},
                                           {"unchanged", 103.0, 1},
                                           {"brand_new", 7.0, 1}});
  const auto rows = compare_bench(baseline, current, 0.10);
  ASSERT_EQ(rows.size(), 5u);

  const auto find = [&](const std::string& name) {
    for (const auto& row : rows) {
      if (row.name == name) return row;
    }
    ADD_FAILURE() << "no comparison row for " << name;
    return rows.front();
  };
  EXPECT_EQ(find("regressed").status, BenchStatus::kRegress);
  EXPECT_EQ(find("improved").status, BenchStatus::kImprove);
  EXPECT_EQ(find("unchanged").status, BenchStatus::kOk);
  EXPECT_EQ(find("vanished").status, BenchStatus::kMissing);
  EXPECT_EQ(find("brand_new").status, BenchStatus::kAdded);
  EXPECT_NEAR(find("regressed").delta, 0.25, 1e-9);

  // A missing kernel counts as a regression (a deleted benchmark must not
  // silently pass the gate); an added one does not.
  std::ostringstream os;
  EXPECT_EQ(render_bench_comparison(os, rows), 2u);
  EXPECT_NE(os.str().find("REGRESS"), std::string::npos);
  EXPECT_NE(os.str().find("MISSING"), std::string::npos);
}

TEST(BenchCompare, ThresholdIsStrict) {
  const BenchReport baseline = make_report({{"k", 100.0, 1}});
  const auto at = [&](double current_ns, double threshold) {
    const auto rows =
        compare_bench(baseline, make_report({{"k", current_ns, 1}}),
                      threshold);
    return rows.front().status;
  };
  EXPECT_EQ(at(110.0, 0.10), BenchStatus::kOk);      // exactly +10%
  EXPECT_EQ(at(110.1, 0.10), BenchStatus::kRegress);  // just past the gate
  EXPECT_EQ(at(90.0, 0.10), BenchStatus::kOk);       // exactly -10%
  EXPECT_EQ(at(89.9, 0.10), BenchStatus::kImprove);
  EXPECT_EQ(at(140.0, 0.50), BenchStatus::kOk);      // wider gate
}

TEST(BenchCompare, SelfCompareHasZeroRegressions) {
  const BenchReport report = make_report({{"a", 10.0, 1}, {"b", 20.0, 1}});
  const auto rows = compare_bench(report, report, 0.10);
  std::ostringstream os;
  EXPECT_EQ(render_bench_comparison(os, rows), 0u);
}

// ---------------------------------------------------------------------------
// CLI: perf compare-only mode (no timing run)
// ---------------------------------------------------------------------------

struct TempDir {
  explicit TempDir(const std::string& stem) {
    path = (std::filesystem::temp_directory_path() /
            ("cisp-perf-gate-test-" + stem))
               .string();
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string path;
};

std::string write_file(const std::string& dir, const std::string& name,
                       const std::string& text) {
  const std::string path = (std::filesystem::path(dir) / name).string();
  std::ofstream out(path);
  out << text;
  return path;
}

int cli(const std::vector<std::string>& args, std::string* out_text = nullptr,
        std::string* err_text = nullptr) {
  std::vector<const char*> argv = {"cisp_experiments"};
  for (const auto& arg : args) argv.push_back(arg.c_str());
  std::ostringstream out;
  std::ostringstream err;
  const int code = engine::run_cli(static_cast<int>(argv.size()), argv.data(),
                                   out, err);
  if (out_text != nullptr) *out_text = out.str();
  if (err_text != nullptr) *err_text = err.str();
  return code;
}

TEST(PerfCli, CompareOnlyGatesOnRegression) {
  TempDir dir("gate");
  const std::string base =
      write_file(dir.path, "base.json",
                 to_json(make_report({{"k1", 100.0, 1}, {"k2", 100.0, 1}})));
  const std::string slow =
      write_file(dir.path, "slow.json",
                 to_json(make_report({{"k1", 150.0, 1}, {"k2", 100.0, 1}})));

  // Self-compare: clean exit.
  std::string out;
  EXPECT_EQ(cli({"perf", "--current", base, "--against", base}, &out), 0);
  EXPECT_NE(out.find("no regressions"), std::string::npos);

  // A 50% regression fails the gate...
  std::string err;
  EXPECT_EQ(cli({"perf", "--current", slow, "--against", base}, &out, &err),
            1);
  EXPECT_NE(out.find("REGRESS"), std::string::npos);

  // ...unless the gate is warn-only (the CI default this PR)...
  EXPECT_EQ(cli({"perf", "--current", slow, "--against", base, "--warn-only"},
                &out, &err),
            0);
  EXPECT_NE(err.find("warn-only"), std::string::npos);

  // ...or the threshold is widened past the delta.
  EXPECT_EQ(cli({"perf", "--current", slow, "--against", base, "--threshold",
                 "0.6"},
                &out),
            0);
}

TEST(PerfCli, HardForOverridesWarnOnly) {
  TempDir dir("hardfor");
  const std::string base =
      write_file(dir.path, "base.json",
                 to_json(make_report(
                     {{"greedy_solver", 100.0, 1}, {"other", 100.0, 1}})));
  const std::string slow =
      write_file(dir.path, "slow.json",
                 to_json(make_report(
                     {{"greedy_solver", 150.0, 1}, {"other", 100.0, 1}})));

  // A glob matching the regressed kernel fails the job even under
  // --warn-only (the CI shape for the solver/allocator hot paths).
  std::string out;
  std::string err;
  EXPECT_EQ(cli({"perf", "--current", slow, "--against", base, "--warn-only",
                 "--hard-for", "*solver*"},
                &out, &err),
            1);
  EXPECT_NE(err.find("HARD regression"), std::string::npos);

  // A glob that matches nothing leaves the gate warn-only.
  EXPECT_EQ(cli({"perf", "--current", slow, "--against", base, "--warn-only",
                 "--hard-for", "max_min*"},
                &out, &err),
            0);

  // '?' matches exactly one character; the flag is repeatable and any
  // matching glob escalates.
  EXPECT_EQ(cli({"perf", "--current", slow, "--against", base, "--warn-only",
                 "--hard-for", "max_min*", "--hard-for", "greedy_solve?"},
                &out, &err),
            1);

  // Without a regression the globs are inert.
  EXPECT_EQ(cli({"perf", "--current", base, "--against", base, "--hard-for",
                 "*"},
                &out, &err),
            0);
}

TEST(PerfCli, SoftForToleratesMatchingRegressionsUnderTheHardGate) {
  TempDir dir("softfor");
  const std::string base = write_file(
      dir.path, "base.json",
      to_json(make_report({{"exp.wallclock", 100.0, 1},
                           {"max_min_kernel", 100.0, 1}})));
  const std::string exp_slow = write_file(
      dir.path, "exp_slow.json",
      to_json(make_report({{"exp.wallclock", 150.0, 1},
                           {"max_min_kernel", 100.0, 1}})));
  const std::string kernel_slow = write_file(
      dir.path, "kernel_slow.json",
      to_json(make_report({{"exp.wallclock", 100.0, 1},
                           {"max_min_kernel", 150.0, 1}})));

  // Under the HARD gate (no --warn-only), a regression on a kernel
  // matching a soft glob is reported but does not fail the job — the CI
  // shape for noisy wall-clock entries.
  std::string out;
  std::string err;
  EXPECT_EQ(cli({"perf", "--current", exp_slow, "--against", base,
                 "--soft-for", "exp.*"},
                &out, &err),
            0);
  EXPECT_NE(out.find("soft regression"), std::string::npos);
  EXPECT_NE(err.find("soft-tolerated"), std::string::npos);

  // A regression NOT matching any soft glob still fails hard.
  EXPECT_EQ(cli({"perf", "--current", kernel_slow, "--against", base,
                 "--soft-for", "exp.*"},
                &out, &err),
            1);

  // --hard-for wins over --soft-for when both match the same kernel.
  EXPECT_EQ(cli({"perf", "--current", exp_slow, "--against", base,
                 "--soft-for", "exp.*", "--hard-for", "*wallclock*"},
                &out, &err),
            1);
  EXPECT_NE(err.find("HARD regression"), std::string::npos);

  // A baseline kernel missing from the current run is a gating row too;
  // a soft glob covering it keeps the gate green.
  const std::string missing_exp = write_file(
      dir.path, "missing_exp.json",
      to_json(make_report({{"max_min_kernel", 100.0, 1}})));
  EXPECT_EQ(cli({"perf", "--current", missing_exp, "--against", base},
                &out, &err),
            1);
  EXPECT_EQ(cli({"perf", "--current", missing_exp, "--against", base,
                 "--soft-for", "exp.*"},
                &out, &err),
            0);

  // Without a regression the soft globs are inert.
  EXPECT_EQ(cli({"perf", "--current", base, "--against", base, "--soft-for",
                 "*"},
                &out, &err),
            0);
}

TEST(PerfCli, CompareOnlyFailsCleanlyOnBadInput) {
  TempDir dir("bad");
  const std::string good =
      write_file(dir.path, "good.json", to_json(make_report({{"k", 1.0, 1}})));
  const std::string bad =
      write_file(dir.path, "bad.json", "{\"schema\": \"nope\"}");
  EXPECT_NE(cli({"perf", "--current", bad, "--against", good}), 0);
  EXPECT_NE(cli({"perf", "--current", good, "--against",
                 (std::filesystem::path(dir.path) / "absent.json").string()}),
            0);
  EXPECT_NE(cli({"perf", "--bogus-flag"}), 0);
}

}  // namespace
}  // namespace cisp::obs
