// Unit and property tests for src/graph: Dijkstra against brute force,
// Yen's k-shortest paths, disjoint paths, Dinic max-flow against known
// instances, and the Garg-Könemann max concurrent flow solver.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/dijkstra.hpp"
#include "graph/graph.hpp"
#include "graph/ksp.hpp"
#include "graph/maxflow.hpp"
#include "graph/mcf.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace cisp::graphs {
namespace {

Graph diamond() {
  // 0 -> 1 -> 3 and 0 -> 2 -> 3, with a direct 0 -> 3.
  Graph g(4);
  g.add_undirected(0, 1, 1.0);
  g.add_undirected(1, 3, 1.0);
  g.add_undirected(0, 2, 2.0);
  g.add_undirected(2, 3, 2.0);
  g.add_undirected(0, 3, 5.0);
  return g;
}

TEST(Graph, EdgeBookkeeping) {
  Graph g(3);
  const EdgeId e = g.add_edge(0, 1, 2.5);
  EXPECT_EQ(g.edge(e).from, 0u);
  EXPECT_EQ(g.edge(e).to, 1u);
  EXPECT_DOUBLE_EQ(g.edge(e).weight, 2.5);
  const EdgeId u = g.add_undirected(1, 2, 1.0);
  EXPECT_EQ(g.edge(u + 1).from, 2u);  // reverse arc invariant
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.out_edges(1).size(), 1u);  // 0->1 is directed; only 1->2 leaves node 1
}

TEST(Graph, RejectsInvalidEdges) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 5, 1.0), cisp::Error);
  EXPECT_THROW(g.add_edge(0, 1, -1.0), cisp::Error);
}

TEST(Dijkstra, DiamondShortestPath) {
  const Graph g = diamond();
  const auto tree = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(tree.dist[3], 2.0);
  const Path p = extract_path(g, tree, 3);
  EXPECT_EQ(p.nodes, (std::vector<NodeId>{0, 1, 3}));
  EXPECT_DOUBLE_EQ(p.length, 2.0);
}

TEST(Dijkstra, MaskDisablesEdges) {
  const Graph g = diamond();
  // Disable both arcs of the 0-1 edge (ids 0 and 1).
  const auto mask = [](EdgeId e) { return e > 1; };
  const Path p = shortest_path(g, 0, 3, mask);
  EXPECT_DOUBLE_EQ(p.length, 4.0);
  EXPECT_EQ(p.nodes, (std::vector<NodeId>{0, 2, 3}));
}

TEST(Dijkstra, UnreachableGivesEmptyPath) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const auto tree = dijkstra(g, 0);
  EXPECT_FALSE(tree.reached(2));
  EXPECT_TRUE(extract_path(g, tree, 2).empty());
}

TEST(Dijkstra, MatchesBellmanFordProperty) {
  Rng rng(41);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 30;
    Graph g(n);
    for (int e = 0; e < 150; ++e) {
      const auto a = static_cast<NodeId>(rng.uniform_index(n));
      const auto b = static_cast<NodeId>(rng.uniform_index(n));
      if (a != b) g.add_edge(a, b, rng.uniform(0.1, 10.0));
    }
    const auto tree = dijkstra(g, 0);
    // Bellman-Ford reference.
    std::vector<double> dist(n, kUnreachable);
    dist[0] = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (const Edge& e : g.edges()) {
        if (dist[e.from] + e.weight < dist[e.to]) {
          dist[e.to] = dist[e.from] + e.weight;
        }
      }
    }
    for (std::size_t v = 0; v < n; ++v) {
      if (dist[v] == kUnreachable) {
        EXPECT_FALSE(tree.reached(v));
      } else {
        EXPECT_NEAR(tree.dist[v], dist[v], 1e-9);
      }
    }
  }
}

TEST(Dijkstra, EarlyExitMatchesFullRun) {
  Rng rng(43);
  Graph g(50);
  for (int e = 0; e < 300; ++e) {
    const auto a = static_cast<NodeId>(rng.uniform_index(50));
    const auto b = static_cast<NodeId>(rng.uniform_index(50));
    if (a != b) g.add_edge(a, b, rng.uniform(0.1, 5.0));
  }
  const auto full = dijkstra(g, 0);
  for (NodeId t = 1; t < 50; ++t) {
    const Path p = shortest_path(g, 0, t);
    if (full.reached(t)) {
      EXPECT_NEAR(p.length, full.dist[t], 1e-9);
    } else {
      EXPECT_TRUE(p.empty());
    }
  }
}

TEST(Yen, EnumeratesDiamondPathsInOrder) {
  const Graph g = diamond();
  const auto paths = yen_ksp(g, 0, 3, 5);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_DOUBLE_EQ(paths[0].length, 2.0);
  EXPECT_DOUBLE_EQ(paths[1].length, 4.0);
  EXPECT_DOUBLE_EQ(paths[2].length, 5.0);
}

TEST(Yen, PathsAreLooplessAndSorted) {
  Rng rng(47);
  Graph g(20);
  for (int e = 0; e < 100; ++e) {
    const auto a = static_cast<NodeId>(rng.uniform_index(20));
    const auto b = static_cast<NodeId>(rng.uniform_index(20));
    if (a != b) g.add_undirected(a, b, rng.uniform(1.0, 10.0));
  }
  const auto paths = yen_ksp(g, 0, 19, 8);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    std::vector<NodeId> sorted = paths[i].nodes;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end())
        << "loop in path " << i;
    if (i > 0) EXPECT_GE(paths[i].length, paths[i - 1].length - 1e-9);
  }
  // All returned paths distinct.
  for (std::size_t i = 0; i < paths.size(); ++i) {
    for (std::size_t j = i + 1; j < paths.size(); ++j) {
      EXPECT_NE(paths[i].nodes, paths[j].nodes);
    }
  }
}

TEST(Yen, UnreachableTargetReturnsEmpty) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  EXPECT_TRUE(yen_ksp(g, 0, 2, 4).empty());
}

TEST(Yen, RejectsZeroK) {
  const Graph g = diamond();
  EXPECT_THROW(yen_ksp(g, 0, 3, 0), cisp::Error);
}

TEST(Yen, MaskedEdgesAreInvisibleToEveryAlternative) {
  const Graph g = diamond();
  // Disable both arcs of the 0-1 edge (ids 0 and 1): every path through
  // node 1 must vanish, not just the shortest.
  const auto mask = [](EdgeId e) { return e > 1; };
  const auto paths = yen_ksp(g, 0, 3, 5, mask);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].nodes, (std::vector<NodeId>{0, 2, 3}));
  EXPECT_DOUBLE_EQ(paths[0].length, 4.0);
  EXPECT_EQ(paths[1].nodes, (std::vector<NodeId>{0, 3}));
  for (const auto& p : paths) {
    for (const NodeId v : p.nodes) EXPECT_NE(v, 1u);
  }
}

TEST(NodeDisjoint, ParallelChainsFoundInLengthOrder) {
  // Three node-disjoint chains of lengths 2, 3, 4 between 0 and 9.
  Graph g(10);
  g.add_undirected(0, 1, 1.0);
  g.add_undirected(1, 9, 1.0);  // chain A: length 2
  g.add_undirected(0, 2, 1.0);
  g.add_undirected(2, 3, 1.0);
  g.add_undirected(3, 9, 1.0);  // chain B: length 3
  g.add_undirected(0, 4, 1.0);
  g.add_undirected(4, 5, 1.0);
  g.add_undirected(5, 6, 1.0);
  g.add_undirected(6, 9, 1.0);  // chain C: length 4
  const auto paths = node_disjoint_paths(g, 0, 9, 5);
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_DOUBLE_EQ(paths[0].length, 2.0);
  EXPECT_DOUBLE_EQ(paths[1].length, 3.0);
  EXPECT_DOUBLE_EQ(paths[2].length, 4.0);
  // Disjointness of interiors.
  std::vector<NodeId> interior;
  for (const auto& p : paths) {
    for (std::size_t i = 1; i + 1 < p.nodes.size(); ++i) {
      interior.push_back(p.nodes[i]);
    }
  }
  std::sort(interior.begin(), interior.end());
  EXPECT_TRUE(std::adjacent_find(interior.begin(), interior.end()) ==
              interior.end());
}

TEST(NodeDisjoint, DisconnectedEndpointsReturnEmpty) {
  Graph g(4);
  g.add_undirected(0, 1, 1.0);
  g.add_undirected(2, 3, 1.0);
  EXPECT_TRUE(node_disjoint_paths(g, 0, 3, 3).empty());
}

TEST(MaxFlow, ClassicTextbookInstance) {
  // CLRS-style example with max flow 23.
  MaxFlow mf(6);
  mf.add_arc(0, 1, 16);
  mf.add_arc(0, 2, 13);
  mf.add_arc(1, 2, 10);
  mf.add_arc(2, 1, 4);
  mf.add_arc(1, 3, 12);
  mf.add_arc(3, 2, 9);
  mf.add_arc(2, 4, 14);
  mf.add_arc(4, 3, 7);
  mf.add_arc(3, 5, 20);
  mf.add_arc(4, 5, 4);
  EXPECT_DOUBLE_EQ(mf.solve(0, 5), 23.0);
}

TEST(MaxFlow, ParallelDisjointPathsSumCapacity) {
  MaxFlow mf(5);
  mf.add_arc(0, 1, 3);
  mf.add_arc(1, 4, 3);
  mf.add_arc(0, 2, 5);
  mf.add_arc(2, 4, 5);
  mf.add_arc(0, 3, 2);
  mf.add_arc(3, 4, 1);
  EXPECT_DOUBLE_EQ(mf.solve(0, 4), 9.0);
}

TEST(MaxFlow, FlowConservationProperty) {
  Rng rng(53);
  MaxFlow mf(12);
  std::vector<std::tuple<std::size_t, std::uint32_t, std::uint32_t>> arcs;
  for (int e = 0; e < 60; ++e) {
    const auto a = static_cast<std::uint32_t>(rng.uniform_index(12));
    const auto b = static_cast<std::uint32_t>(rng.uniform_index(12));
    if (a == b) continue;
    arcs.push_back({mf.add_arc(a, b, rng.uniform(1.0, 8.0)), a, b});
  }
  const double total = mf.solve(0, 11);
  std::vector<double> net(12, 0.0);
  for (const auto& [arc, a, b] : arcs) {
    net[a] -= mf.flow_on(arc);
    net[b] += mf.flow_on(arc);
  }
  EXPECT_NEAR(net[0], -total, 1e-9);
  EXPECT_NEAR(net[11], total, 1e-9);
  for (std::uint32_t v = 1; v < 11; ++v) EXPECT_NEAR(net[v], 0.0, 1e-9);
}

TEST(Mcf, SingleCommodityApproachesMaxFlow) {
  // Two disjoint unit-capacity paths: max concurrent flow of a demand of 2
  // has lambda = 1; of a demand of 4, lambda = 0.5.
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  const auto r2 = max_concurrent_flow(g, {{0, 3, 2.0}}, 0.05);
  EXPECT_GT(r2.lambda, 0.85);
  EXPECT_LE(r2.lambda, 1.0 + 1e-9);
  const auto r4 = max_concurrent_flow(g, {{0, 3, 4.0}}, 0.05);
  EXPECT_GT(r4.lambda, 0.42);
  EXPECT_LE(r4.lambda, 0.5 + 1e-9);
}

TEST(Mcf, CapacitiesRespectedProperty) {
  Rng rng(59);
  Graph g(10);
  for (int e = 0; e < 50; ++e) {
    const auto a = static_cast<NodeId>(rng.uniform_index(10));
    const auto b = static_cast<NodeId>(rng.uniform_index(10));
    if (a != b) g.add_edge(a, b, rng.uniform(1.0, 5.0));
  }
  std::vector<Demand> demands = {{0, 9, 2.0}, {1, 8, 1.0}, {2, 7, 1.5}};
  // Ensure connectivity for the demands; if not, regenerate deterministically
  // by adding direct low-capacity edges.
  for (const auto& d : demands) {
    if (shortest_path(g, d.source, d.target).empty()) {
      g.add_edge(d.source, d.target, 1.0);
    }
  }
  const auto result = max_concurrent_flow(g, demands, 0.1);
  for (std::size_t e = 0; e < g.edge_count(); ++e) {
    double used = 0.0;
    for (const auto& f : result.flow) used += f[e];
    EXPECT_LE(used, g.edge(static_cast<EdgeId>(e)).weight * 1.05);
  }
  EXPECT_GT(result.lambda, 0.0);
}

TEST(Mcf, PrimaryPathsConnectEndpoints) {
  Graph g(4);
  g.add_edge(0, 1, 10.0);
  g.add_edge(1, 3, 10.0);
  g.add_edge(0, 2, 10.0);
  g.add_edge(2, 3, 10.0);
  const auto result = max_concurrent_flow(g, {{0, 3, 1.0}}, 0.1);
  ASSERT_EQ(result.primary_path.size(), 1u);
  ASSERT_FALSE(result.primary_path[0].empty());
  EXPECT_EQ(result.primary_path[0].nodes.front(), 0u);
  EXPECT_EQ(result.primary_path[0].nodes.back(), 3u);
}

TEST(Mcf, AsymmetricBranchesCarryProportionalFlow) {
  // 0 -> 1 -> 3 at capacity 1 in parallel with 0 -> 2 -> 3 at capacity 3:
  // max flow is 4, so a demand of 4 has optimal lambda 1. The primary
  // (largest-share) path must take the fat branch.
  Graph g(4);
  const EdgeId thin = g.add_edge(0, 1, 1.0);
  g.add_edge(1, 3, 1.0);
  const EdgeId fat = g.add_edge(0, 2, 3.0);
  g.add_edge(2, 3, 3.0);
  const auto result = max_concurrent_flow(g, {{0, 3, 4.0}}, 0.05);
  EXPECT_GT(result.lambda, 0.85);
  EXPECT_LE(result.lambda, 1.0 + 1e-9);
  ASSERT_EQ(result.flow.size(), 1u);
  EXPECT_GT(result.flow[0][fat], result.flow[0][thin]);
  ASSERT_EQ(result.primary_path.size(), 1u);
  EXPECT_EQ(result.primary_path[0].nodes, (std::vector<NodeId>{0, 2, 3}));
}

TEST(Mcf, DisconnectedCommodityThrows) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  EXPECT_THROW(max_concurrent_flow(g, {{0, 3, 1.0}}, 0.1), cisp::Error);
}

TEST(Mcf, RejectsBadInput) {
  Graph g(2);
  g.add_edge(0, 1, 1.0);
  EXPECT_THROW(max_concurrent_flow(g, {}, 0.1), cisp::Error);
  EXPECT_THROW(max_concurrent_flow(g, {{0, 1, 1.0}}, 0.9), cisp::Error);
  EXPECT_THROW(max_concurrent_flow(g, {{0, 0, 1.0}}, 0.1), cisp::Error);
  EXPECT_THROW(max_concurrent_flow(g, {{0, 1, -2.0}}, 0.1), cisp::Error);
}

}  // namespace
}  // namespace cisp::graphs
