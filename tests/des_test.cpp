// Regression tests for the calendar-queue DES core and the sharded packet
// backend: a golden event-order trace against a reference priority-queue
// implementation, run_until boundary semantics, FIFO tie-breaking,
// calendar resize stress, the Karn-compliant TCP RTT sampling rule, shard
// partitioning, and byte-identical packet results across shard and thread
// counts.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <functional>
#include <queue>
#include <vector>

#include "design/problem.hpp"
#include "net/builder.hpp"
#include "net/flow/demand_matrix.hpp"
#include "net/node.hpp"
#include "net/routing.hpp"
#include "net/shard.hpp"
#include "net/sim.hpp"
#include "net/tcp.hpp"
#include "net/traffic_model.hpp"
#include "util/rng.hpp"

namespace cisp::net {

/// White-box pin for the Karn sampling rule: the distinguishing scenario
/// (a stretched ACK whose top segment was retransmitted but which covers a
/// clean segment below) cannot be produced through the network by this
/// sender, so the test drives the transmit/ack path directly.
struct TcpTestPeer {
  static void transmit(TcpFlow& flow, std::uint64_t seg, bool retransmit) {
    flow.transmit_now(seg, retransmit);
  }
  static void ack(TcpFlow& flow, std::uint64_t ack_seg) {
    flow.on_ack(ack_seg);
  }
};

namespace {

// --- Golden event-order trace against a reference priority-queue core ----

/// The retired event core, reimplemented minimally: a binary heap ordered
/// by (when, seq). The calendar queue must replay any workload in exactly
/// this order.
class ReferenceSim {
 public:
  using Handler = std::function<void()>;

  [[nodiscard]] Time now() const noexcept { return now_; }

  void schedule(Time delay, Handler handler) {
    schedule_at(now_ + delay, std::move(handler));
  }
  void schedule_at(Time when, Handler handler) {
    queue_.push({when, next_seq_++, std::move(handler)});
  }

  void run_until(Time end) {
    while (!queue_.empty() && queue_.top().when <= end) {
      Event event = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      now_ = event.when;
      event.handler();
    }
    if (now_ < end) now_ = end;
  }

 private:
  struct Event {
    Time when;
    std::uint64_t seq;
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

/// A workload dense in ties and nested scheduling, recorded as the fired
/// id sequence plus the bit pattern of every firing time.
template <typename SimT>
void run_trace_workload(SimT& sim, std::vector<int>& ids,
                        std::vector<Time>& times) {
  for (int i = 0; i < 48; ++i) {
    const double t = 0.05 * (i % 8);  // six-way ties per time slot
    sim.schedule(t, [&, i] {
      ids.push_back(i);
      times.push_back(sim.now());
      if (i % 3 == 0) {
        // A tie at the current instant and a later follow-up.
        sim.schedule(0.0, [&, i] {
          ids.push_back(100 + i);
          times.push_back(sim.now());
        });
        sim.schedule(0.1250001, [&, i] {
          ids.push_back(200 + i);
          times.push_back(sim.now());
        });
      }
    });
  }
  sim.run_until(10.0);
}

TEST(CalendarQueue, GoldenTraceMatchesPriorityQueueReference) {
  std::vector<int> ref_ids, cal_ids;
  std::vector<Time> ref_times, cal_times;
  ReferenceSim ref;
  run_trace_workload(ref, ref_ids, ref_times);
  Simulator cal;
  run_trace_workload(cal, cal_ids, cal_times);
  ASSERT_EQ(ref_ids.size(), cal_ids.size());
  EXPECT_EQ(ref_ids, cal_ids);
  ASSERT_EQ(ref_times.size(), cal_times.size());
  EXPECT_EQ(0, std::memcmp(ref_times.data(), cal_times.data(),
                           ref_times.size() * sizeof(Time)));
}

TEST(CalendarQueue, RunUntilExecutesEventsAtExactlyEnd) {
  Simulator sim;
  int at_end = 0;
  int after_end = 0;
  sim.schedule_at(1.0, [&] { ++at_end; });
  sim.schedule_at(1.0, [&] { ++at_end; });
  sim.schedule_at(std::nextafter(1.0, 2.0), [&] { ++after_end; });
  sim.run_until(1.0);
  EXPECT_EQ(at_end, 2);
  EXPECT_EQ(after_end, 0);
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
  EXPECT_EQ(sim.events_pending(), 1u);
  sim.run_until(2.0);
  EXPECT_EQ(after_end, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);  // clamps to end with an empty queue
}

TEST(CalendarQueue, FifoTieBreakSurvivesReschedulingAtNow) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(0.5, [&] {
    order.push_back(0);
    // Scheduled mid-dispatch at the current instant: must run after every
    // already-queued event at 0.5 (larger seq), in scheduling order.
    sim.schedule(0.0, [&] { order.push_back(10); });
    sim.schedule(0.0, [&] { order.push_back(11); });
  });
  sim.schedule_at(0.5, [&] { order.push_back(1); });
  sim.schedule_at(0.5, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 10, 11}));
}

TEST(CalendarQueue, ResizeStressKeepsGlobalOrderAcrossTimeScales) {
  Simulator sim;
  Rng rng(99);
  std::vector<Time> fired;
  // A microsecond-scale burst and a sparse hundreds-of-seconds tail in one
  // queue: forces grow, shrink, and width re-estimation.
  for (int i = 0; i < 5000; ++i) {
    sim.schedule(rng.uniform() * 1e-3, [&] { fired.push_back(sim.now()); });
  }
  for (int i = 0; i < 500; ++i) {
    sim.schedule(rng.uniform(10.0, 1000.0),
                 [&] { fired.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(fired.size(), 5500u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    ASSERT_LE(fired[i - 1], fired[i]);
  }
  EXPECT_EQ(sim.events_processed(), 5500u);
  EXPECT_EQ(sim.events_pending(), 0u);
  // The drained queue must stay usable (shrink path).
  int post = 0;
  sim.schedule(0.5, [&] { ++post; });
  sim.run();
  EXPECT_EQ(post, 1);
}

TEST(Simulator, CountsEventsByKind) {
  Simulator sim;
  Network network(sim, 2);
  const std::size_t l = network.add_duplex_link(0, 1, 1e9, 0.001);
  network.node(0).set_route(0, 1, &network.link(l));
  std::uint64_t delivered = 0;
  network.node(1).set_local_deliver([&](const Packet&) { ++delivered; });
  for (int i = 0; i < 5; ++i) {
    Packet p;
    p.src = 0;
    p.dst = 1;
    p.size_bytes = 500;
    network.inject(p);
  }
  sim.schedule(0.01, [] {});
  sim.run();
  EXPECT_EQ(delivered, 5u);
  EXPECT_EQ(sim.events_processed(EventKind::kLinkDeliver), 5u);
  EXPECT_EQ(sim.events_processed(EventKind::kLinkDone), 5u);
  EXPECT_EQ(sim.events_processed(EventKind::kClosure), 1u);
  EXPECT_EQ(sim.events_processed(), 11u);
}

// --- Karn-compliant RTT sampling -----------------------------------------

TEST(Tcp, RttSampleSkipsRetransmittedSegmentInStretchedAck) {
  Simulator sim;
  Network network(sim, 2);  // no routes: injected packets drop, no real acks
  TcpRegistry registry;
  TcpFlow flow(network, registry, 1, 0, 1, 2 * 1448, {});
  sim.schedule_at(0.00, [&] { TcpTestPeer::transmit(flow, 0, false); });
  sim.schedule_at(0.01, [&] { TcpTestPeer::transmit(flow, 1, true); });
  sim.schedule_at(0.03, [&] { TcpTestPeer::ack(flow, 2); });
  sim.run_until(0.05);
  // The stretched ACK's top segment (1) was retransmitted — ambiguous
  // under Karn — but segment 0 below it is clean and must be sampled:
  // srtt = 0.03 - 0.00. The pre-fix sampler looked only at ack_seg - 1 and
  // recorded nothing here.
  EXPECT_DOUBLE_EQ(flow.srtt_s(), 0.03);
  EXPECT_TRUE(flow.complete());
}

TEST(Tcp, RttSampleUsesHighestCleanSegment) {
  Simulator sim;
  Network network(sim, 2);
  TcpRegistry registry;
  TcpFlow flow(network, registry, 1, 0, 1, 2 * 1448, {});
  sim.schedule_at(0.00, [&] { TcpTestPeer::transmit(flow, 0, false); });
  sim.schedule_at(0.02, [&] { TcpTestPeer::transmit(flow, 1, false); });
  sim.schedule_at(0.03, [&] { TcpTestPeer::ack(flow, 2); });
  sim.run_until(0.05);
  // Both clean: the HIGHEST newly-acked segment is the sample (0.01, not
  // 0.03).
  EXPECT_DOUBLE_EQ(flow.srtt_s(), 0.01);
}

// --- Sharding ------------------------------------------------------------

LinkPlan two_component_plan() {
  LinkPlan plan;
  plan.node_count = 4;
  plan.links.push_back({0, 1, 1e7, 0.002, 50, true});
  plan.links.push_back({2, 3, 1e7, 0.002, 50, true});
  return plan;
}

TEST(Shard, GroupsDemandsByEdgeDisjointRoutes) {
  LinkPlan plan;
  plan.node_count = 3;
  plan.links.push_back({0, 1, 1e7, 0.001, 50, true});
  plan.links.push_back({1, 2, 1e7, 0.001, 50, true});
  const TopologyView topo = view_from_plan(plan);
  const std::vector<TrafficDemand> demands = {
      {0, 2, 1e6},  // edges 0->1->2: unions both forward edges
      {1, 0, 1e6},  // reverse edge of link 0: independent direction
      {0, 1, 1e6},  // shares the 0->1 edge with demand 0
  };
  const RoutingResult routes =
      compute_routes(topo.view, demands, RoutingScheme::ShortestPath);
  const ShardPlan shards = shard_by_path_edges(routes, demands.size());
  ASSERT_EQ(shards.shards.size(), 2u);
  EXPECT_EQ(shards.shards[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(shards.shards[1], (std::vector<std::size_t>{1}));
  // Folding to one shard keeps every demand, in order.
  const ShardPlan folded = shard_by_path_edges(routes, demands.size(), 1);
  ASSERT_EQ(folded.shards.size(), 1u);
  EXPECT_EQ(folded.shards[0], (std::vector<std::size_t>{0, 1, 2}));
}

design::DesignInput four_site_input() {
  std::vector<std::vector<double>> geod(4, std::vector<double>(4, 500.0));
  for (int i = 0; i < 4; ++i) geod[i][i] = 0.0;
  auto fiber = geod;
  for (auto& row : fiber) {
    for (double& v : row) v *= 1.9;
  }
  std::vector<std::vector<double>> traffic(4, std::vector<double>(4, 1.0));
  for (int i = 0; i < 4; ++i) traffic[i][i] = 0.0;
  std::vector<design::CandidateLink> cands = {{0, 1, 525.0, 10.0}};
  return design::DesignInput(std::move(geod), std::move(fiber),
                             std::move(traffic), std::move(cands), 10.0);
}

/// Bitwise comparison of two packet reports: stats the figures print plus
/// the full per-pair breakdown.
void expect_reports_identical(const TrafficReport& a, const TrafficReport& b) {
  const auto same = [](double x, double y) {
    return std::memcmp(&x, &y, sizeof(double)) == 0;
  };
  EXPECT_TRUE(same(a.stats.mean_delay_s, b.stats.mean_delay_s));
  EXPECT_TRUE(same(a.stats.loss_rate, b.stats.loss_rate));
  EXPECT_TRUE(same(a.stats.offered_bps, b.stats.offered_bps));
  EXPECT_TRUE(same(a.stats.delivered_bps, b.stats.delivered_bps));
  EXPECT_TRUE(same(a.stats.mean_stretch, b.stats.mean_stretch));
  EXPECT_TRUE(same(a.stats.max_stretch, b.stats.max_stretch));
  ASSERT_EQ(a.pairs.size(), b.pairs.size());
  for (std::size_t i = 0; i < a.pairs.size(); ++i) {
    EXPECT_TRUE(same(a.pairs[i].delivered_bps, b.pairs[i].delivered_bps));
    EXPECT_TRUE(same(a.pairs[i].latency_s, b.pairs[i].latency_s));
    EXPECT_TRUE(same(a.pairs[i].stretch, b.pairs[i].stretch));
  }
}

TEST(Shard, PacketResultsByteIdenticalAcrossShardAndThreadCounts) {
  const design::DesignInput input = four_site_input();
  design::CapacityPlan cap;
  cap.aggregate_gbps = 1.0;
  const LinkPlan plan = two_component_plan();
  const auto model =
      make_traffic_model(TrafficBackend::Packet, input, cap);

  // Two independent duplex links; the (2,3) pair is overloaded so loss and
  // queueing dynamics are part of what must reproduce.
  const auto demands = flow::DemandMatrix::from_pairs({
      {0, 1, 10, 4e6},
      {1, 0, 10, 2e6},
      {2, 3, 10, 2e7},
      {3, 2, 10, 1e6},
  });

  TrafficRunOptions options;
  options.plan = &plan;
  options.sim_duration_s = 0.1;
  options.drain_s = 0.05;
  options.seed = 42;
  options.threads = 1;
  options.packet_shards = 1;  // the pre-sharding single-simulator run
  const TrafficReport baseline = model->run(demands, options);
  EXPECT_GT(baseline.stats.loss_rate, 0.0);  // the overload is real

  const struct {
    std::size_t shards;
    std::size_t threads;
  } cells[] = {{0, 1}, {0, 2}, {0, 4}, {0, 0}, {2, 2}, {4, 4}, {3, 2}};
  for (const auto& cell : cells) {
    options.packet_shards = cell.shards;
    options.threads = cell.threads;
    const TrafficReport report = model->run(demands, options);
    expect_reports_identical(baseline, report);
  }
}

}  // namespace
}  // namespace cisp::net
