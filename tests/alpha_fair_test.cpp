// Tests for the weighted alpha-fair allocator: proportional-fairness
// shares against closed forms (2-link triangle, weighted bottleneck), the
// alpha -> infinity limit against the hand-verified max-min fixtures
// (single bottleneck, parking lot) both as a numeric limit and as the
// exact dispatch, demand caps / work conservation, and the thread-count
// byte-identity contract at 1/2/4/0 threads.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "net/flow/alpha_fair.hpp"
#include "net/flow/max_min.hpp"
#include "net/routing.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace cisp::net {
namespace {

/// A chain 0 - 1 - ... - n-1 of duplex links with per-link capacities and
/// 1 ms propagation per hop (the flow_test fixture).
SimTopologyView chain_view(const std::vector<double>& caps_bps) {
  SimTopologyView view;
  view.latency_graph = graphs::Graph(caps_bps.size() + 1);
  for (std::size_t i = 0; i < caps_bps.size(); ++i) {
    view.latency_graph.add_edge(static_cast<graphs::NodeId>(i),
                                static_cast<graphs::NodeId>(i + 1), 0.001);
    view.edge_to_link.push_back(2 * i);
    view.capacity_bps.push_back(caps_bps[i]);
    view.latency_graph.add_edge(static_cast<graphs::NodeId>(i + 1),
                                static_cast<graphs::NodeId>(i), 0.001);
    view.edge_to_link.push_back(2 * i + 1);
    view.capacity_bps.push_back(caps_bps[i]);
  }
  return view;
}

flow::Allocation elastic(const SimTopologyView& view,
                         const std::vector<TrafficDemand>& demands,
                         const flow::ElasticOptions& options = {},
                         const std::vector<double>& weights = {}) {
  const RoutingResult routes =
      compute_routes(view, demands, RoutingScheme::ShortestPath);
  std::vector<double> rates;
  for (const auto& d : demands) rates.push_back(d.rate_bps);
  return flow::alpha_fair_allocate(view, routes.paths, rates, weights,
                                   options);
}

// ---------------------------------------------------------------------------
// Proportional fairness (alpha = 1) closed forms
// ---------------------------------------------------------------------------

TEST(AlphaFair, TriangleMatchesClosedForm) {
  // Two links of capacity c; flows: the 1-hop 0->1 and 1->2, plus the
  // 2-hop 0->2. PF maximizes log x1 + log x2 + log x3 subject to
  // x1 + x3 <= c, x2 + x3 <= c: the classic x3 = c/3, x1 = x2 = 2c/3
  // (the 2-hop flow pays for two resources).
  const double c = 9e9;
  const auto view = chain_view({c, c});
  const std::vector<TrafficDemand> demands = {
      {0, 1, 100e9}, {1, 2, 100e9}, {0, 2, 100e9}};
  const auto allocation = elastic(view, demands);
  EXPECT_NEAR(allocation.rate_bps[0], 2.0 * c / 3.0, 0.01 * c);
  EXPECT_NEAR(allocation.rate_bps[1], 2.0 * c / 3.0, 0.01 * c);
  EXPECT_NEAR(allocation.rate_bps[2], c / 3.0, 0.01 * c);
  // Both links end up saturated.
  EXPECT_NEAR(allocation.edge_load_bps[0], c, 0.01 * c);
  EXPECT_NEAR(allocation.edge_load_bps[2], c, 0.01 * c);
}

TEST(AlphaFair, WeightedBottleneckSharesProportionally) {
  // One link, two flows with weights 2 : 1 — weighted PF splits the
  // capacity in weight proportion.
  const double c = 9e9;
  const auto view = chain_view({c});
  const std::vector<TrafficDemand> demands = {{0, 1, 100e9}, {0, 1, 100e9}};
  const auto allocation = elastic(view, demands, {}, {2.0, 1.0});
  EXPECT_NEAR(allocation.rate_bps[0], 2.0 * c / 3.0, 0.01 * c);
  EXPECT_NEAR(allocation.rate_bps[1], c / 3.0, 0.01 * c);
}

TEST(AlphaFair, UncongestedFlowsGetTheirDemandExactly) {
  // Demands far below capacity: the Pareto fill must hand every flow its
  // full demand, not an approximation.
  const auto view = chain_view({10e9, 10e9});
  const std::vector<TrafficDemand> demands = {
      {0, 2, 1e9}, {0, 1, 2e9}, {1, 2, 3e9}};
  const auto allocation = elastic(view, demands);
  EXPECT_NEAR(allocation.rate_bps[0], 1e9, 1.0);
  EXPECT_NEAR(allocation.rate_bps[1], 2e9, 1.0);
  EXPECT_NEAR(allocation.rate_bps[2], 3e9, 1.0);
}

TEST(AlphaFair, RespectsDemandCapsAndFillsHeadroom) {
  // Parking lot with a demand-capped short flow: the cap binds (2 Gbps),
  // and the freed capacity goes to the flows sharing its link.
  const auto view = chain_view({10e9, 10e9, 10e9});
  const std::vector<TrafficDemand> demands = {
      {0, 3, 100e9}, {0, 1, 2e9}, {1, 2, 100e9}, {2, 3, 100e9}};
  const auto allocation = elastic(view, demands);
  EXPECT_NEAR(allocation.rate_bps[1], 2e9, 1e6);
  // Work conservation: every link is either saturated or all its flows
  // are demand-capped; here links 2 and 3 must be full.
  EXPECT_NEAR(allocation.edge_load_bps[2], 10e9, 0.02 * 10e9);
  EXPECT_NEAR(allocation.edge_load_bps[4], 10e9, 0.02 * 10e9);
  // No link oversubscribed (strict feasibility).
  for (std::size_t e = 0; e < view.capacity_bps.size(); ++e) {
    EXPECT_LE(allocation.edge_load_bps[e],
              view.capacity_bps[e] * (1.0 + 1e-9));
  }
}

TEST(AlphaFair, UncongestedInstanceConvergesInOneDualIteration) {
  // With every demand far below capacity the first dual iteration already
  // sees all flows demand-capped and a zero KKT residual, so the solver
  // must terminate after exactly one iteration. Pinned: a change that
  // silently burns extra iterations on the easy case should fail loudly.
  obs::reset_metrics();
  obs::set_metrics_enabled(true);
  const auto view = chain_view({10e9, 10e9});
  const std::vector<TrafficDemand> demands = {
      {0, 2, 1e9}, {0, 1, 2e9}, {1, 2, 3e9}};
  const auto allocation = elastic(view, demands);
  obs::set_metrics_enabled(false);

  EXPECT_EQ(allocation.dual_iterations, 1u);
  // Every flow got its full demand in the dual phase, so the max-min
  // repair fill has nothing to do.
  EXPECT_EQ(allocation.fill_rounds, 0u);
  // `rounds` keeps its historical summed meaning; the new fields break
  // out the parts.
  EXPECT_EQ(allocation.rounds,
            allocation.dual_iterations + allocation.fill_rounds);
  // The obs counters mirror the per-call fields.
  EXPECT_EQ(obs::counter("alpha_fair.iterations").value(),
            allocation.dual_iterations);
  EXPECT_EQ(obs::counter("alpha_fair.fill_rounds").value(),
            allocation.fill_rounds);
  obs::reset_metrics();
}

// ---------------------------------------------------------------------------
// The alpha -> infinity limit
// ---------------------------------------------------------------------------

TEST(AlphaFair, LargeAlphaApproachesMaxMinOnParkingLot) {
  // 3-link parking lot, all demands unbounded: closed form gives the long
  // flow c / (3^(1/alpha) + 1) -> c/2 as alpha grows. At alpha = 16 the
  // gap to max-min is ~3.5%; check convergence against the max-min
  // allocator within 5%.
  const double c = 10e9;
  const auto view = chain_view({c, c, c});
  const std::vector<TrafficDemand> demands = {
      {0, 3, 100e9}, {0, 1, 100e9}, {1, 2, 100e9}, {2, 3, 100e9}};

  const RoutingResult routes =
      compute_routes(view, demands, RoutingScheme::ShortestPath);
  std::vector<double> rates;
  for (const auto& d : demands) rates.push_back(d.rate_bps);
  const auto max_min = flow::max_min_allocate(view, routes.paths, rates);

  flow::ElasticOptions options;
  options.alpha = 16.0;
  const auto allocation =
      flow::alpha_fair_allocate(view, routes.paths, rates, {}, options);
  for (std::size_t f = 0; f < rates.size(); ++f) {
    EXPECT_NEAR(allocation.rate_bps[f], max_min.rate_bps[f],
                0.05 * max_min.rate_bps[f])
        << "flow " << f;
  }
  // And the closed form itself.
  const double expected_long = c / (std::pow(3.0, 1.0 / 16.0) + 1.0);
  EXPECT_NEAR(allocation.rate_bps[0], expected_long, 0.02 * expected_long);

  // Monotonicity in alpha: a larger alpha moves the long flow closer to
  // the max-min share.
  options.alpha = 4.0;
  const auto coarser =
      flow::alpha_fair_allocate(view, routes.paths, rates, {}, options);
  EXPECT_LT(coarser.rate_bps[0], allocation.rate_bps[0]);
}

TEST(AlphaFair, InfiniteAlphaDispatchesToMaxMinExactly) {
  // Both the single-bottleneck and demand-capped parking-lot fixtures:
  // alpha = inf (and any alpha >= kMaxMinAlpha) must return the max-min
  // allocation BYTE-identically, not approximately.
  const std::vector<std::vector<TrafficDemand>> fixtures = {
      {{0, 1, 10e9}, {0, 1, 10e9}, {0, 1, 10e9}},
      {{0, 3, 10e9}, {0, 1, 2e9}, {1, 2, 10e9}, {2, 3, 10e9}},
  };
  const std::vector<SimTopologyView> views = {
      chain_view({9e9}), chain_view({10e9, 10e9, 10e9})};
  for (std::size_t i = 0; i < fixtures.size(); ++i) {
    const RoutingResult routes =
        compute_routes(views[i], fixtures[i], RoutingScheme::ShortestPath);
    std::vector<double> rates;
    for (const auto& d : fixtures[i]) rates.push_back(d.rate_bps);
    const auto max_min = flow::max_min_allocate(views[i], routes.paths, rates);
    for (const double alpha :
         {std::numeric_limits<double>::infinity(), flow::kMaxMinAlpha}) {
      flow::ElasticOptions options;
      options.alpha = alpha;
      const auto allocation = flow::alpha_fair_allocate(
          views[i], routes.paths, rates, {}, options);
      ASSERT_EQ(allocation.rate_bps.size(), max_min.rate_bps.size());
      EXPECT_EQ(std::memcmp(allocation.rate_bps.data(),
                            max_min.rate_bps.data(),
                            max_min.rate_bps.size() * sizeof(double)),
                0)
          << "fixture " << i << " alpha " << alpha;
    }
  }
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

TEST(AlphaFair, AllocationsAreByteIdenticalAcrossThreadCounts) {
  // The same random instance as the max-min invariance test; the pool is
  // forced on via parallel_cutoff = 1 so every sharded piece really runs
  // sharded at threads > 1.
  const std::size_t n = 24;
  SimTopologyView view;
  view.latency_graph = graphs::Graph(n);
  Rng rng(404);
  const auto add_duplex = [&](std::size_t a, std::size_t b, double cap) {
    view.latency_graph.add_edge(static_cast<graphs::NodeId>(a),
                                static_cast<graphs::NodeId>(b),
                                rng.uniform(0.001, 0.005));
    view.edge_to_link.push_back(view.edge_to_link.size());
    view.capacity_bps.push_back(cap);
    view.latency_graph.add_edge(static_cast<graphs::NodeId>(b),
                                static_cast<graphs::NodeId>(a),
                                rng.uniform(0.001, 0.005));
    view.edge_to_link.push_back(view.edge_to_link.size());
    view.capacity_bps.push_back(cap);
  };
  for (std::size_t i = 0; i + 1 < n; ++i) {
    add_duplex(i, i + 1, rng.uniform(1e9, 5e9));
  }
  for (int chord = 0; chord < 20; ++chord) {
    const std::size_t a = rng.uniform_index(n);
    const std::size_t b = rng.uniform_index(n);
    if (a != b) add_duplex(a, b, rng.uniform(1e9, 5e9));
  }
  std::vector<TrafficDemand> demands;
  std::vector<double> weights;
  for (int f = 0; f < 600; ++f) {
    const auto a = static_cast<std::uint32_t>(rng.uniform_index(n));
    const auto b = static_cast<std::uint32_t>(rng.uniform_index(n));
    if (a == b) continue;
    demands.push_back({a, b, rng.uniform(1e7, 5e8)});
    weights.push_back(rng.uniform(0.5, 4.0));
  }

  const RoutingResult routes =
      compute_routes(view, demands, RoutingScheme::ShortestPath);
  std::vector<double> rates;
  for (const auto& d : demands) rates.push_back(d.rate_bps);

  flow::ElasticOptions serial;
  serial.threads = 1;
  const auto baseline =
      flow::alpha_fair_allocate(view, routes.paths, rates, weights, serial);
  EXPECT_GT(baseline.rounds, 1u);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4},
                                    std::size_t{0}}) {
    flow::ElasticOptions options;
    options.threads = threads;
    options.parallel_cutoff = 1;
    const auto parallel =
        flow::alpha_fair_allocate(view, routes.paths, rates, weights,
                                  options);
    ASSERT_EQ(parallel.rate_bps.size(), baseline.rate_bps.size());
    EXPECT_EQ(std::memcmp(parallel.rate_bps.data(), baseline.rate_bps.data(),
                          baseline.rate_bps.size() * sizeof(double)),
              0)
        << "rates differ at threads=" << threads;
    EXPECT_EQ(std::memcmp(parallel.edge_load_bps.data(),
                          baseline.edge_load_bps.data(),
                          baseline.edge_load_bps.size() * sizeof(double)),
              0)
        << "edge loads differ at threads=" << threads;
    EXPECT_EQ(parallel.rounds, baseline.rounds);
  }
}

TEST(AlphaFair, ZeroDemandFlowsStayAtZero) {
  const auto view = chain_view({10e9});
  const std::vector<TrafficDemand> demands = {{0, 1, 0.0}, {0, 1, 5e9}};
  const auto allocation = elastic(view, demands);
  EXPECT_DOUBLE_EQ(allocation.rate_bps[0], 0.0);
  EXPECT_NEAR(allocation.rate_bps[1], 5e9, 1.0);
}

}  // namespace
}  // namespace cisp::net
