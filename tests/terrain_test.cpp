// Unit and property tests for src/terrain: noise determinism/continuity,
// synthetic terrain shape (ridges where geography says so), raster fidelity,
// and profile extraction.

#include <gtest/gtest.h>

#include <cmath>

#include "geo/geodesic.hpp"
#include "terrain/heightfield.hpp"
#include "terrain/noise.hpp"
#include "terrain/profile.hpp"
#include "terrain/regions.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace cisp::terrain {
namespace {

TEST(ValueNoise, DeterministicForSeed) {
  ValueNoise a(123);
  ValueNoise b(123);
  ValueNoise c(124);
  EXPECT_DOUBLE_EQ(a.at(1.5, 2.5), b.at(1.5, 2.5));
  EXPECT_NE(a.at(1.5, 2.5), c.at(1.5, 2.5));
}

TEST(ValueNoise, BoundedOutput) {
  ValueNoise n(7);
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const double v = n.at(rng.uniform(-100.0, 100.0), rng.uniform(-100.0, 100.0));
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(ValueNoise, ContinuityProperty) {
  // |n(x+eps) - n(x)| must vanish with eps (C1 interpolation).
  ValueNoise n(11);
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-50.0, 50.0);
    const double y = rng.uniform(-50.0, 50.0);
    EXPECT_NEAR(n.at(x, y), n.at(x + 1e-6, y), 1e-4);
    EXPECT_NEAR(n.at(x, y), n.at(x, y + 1e-6), 1e-4);
  }
}

TEST(Fbm, BoundedAndDeterministic) {
  Fbm f({.seed = 42, .octaves = 5, .frequency = 1.0});
  Fbm g({.seed = 42, .octaves = 5, .frequency = 1.0});
  Rng rng(13);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform(-30.0, 30.0);
    const double y = rng.uniform(-30.0, 30.0);
    const double v = f.at(x, y);
    EXPECT_DOUBLE_EQ(v, g.at(x, y));
    EXPECT_GE(v, -1.001);
    EXPECT_LE(v, 1.001);
  }
}

TEST(Fbm, RejectsBadParams) {
  EXPECT_THROW(Fbm({.seed = 1, .octaves = 0}), Error);
  EXPECT_THROW(Fbm({.seed = 1, .octaves = 3, .frequency = 0.0}), Error);
}

TEST(SyntheticTerrain, RockiesHigherThanGreatPlains) {
  const auto region = contiguous_us();
  const SyntheticTerrain terrain = region.make_terrain();
  // Colorado Rockies vs central Kansas.
  const double rockies = terrain.elevation_m({39.5, -106.0});
  const double plains = terrain.elevation_m({38.5, -98.0});
  EXPECT_GT(rockies, 1500.0);
  EXPECT_LT(plains, 700.0);
  EXPECT_GT(rockies, plains + 800.0);
}

TEST(SyntheticTerrain, AppalachiansModestButPresent) {
  const auto region = contiguous_us();
  const SyntheticTerrain terrain = region.make_terrain();
  const double appalachia = terrain.elevation_m({36.5, -81.7});
  const double coastal_plain = terrain.elevation_m({35.0, -78.0});
  EXPECT_GT(appalachia, coastal_plain);
  EXPECT_GT(appalachia, 500.0);
}

TEST(SyntheticTerrain, AlpsDominateEurope) {
  const auto region = europe();
  const SyntheticTerrain terrain = region.make_terrain();
  const double alps = terrain.elevation_m({46.5, 9.5});
  const double po_valley = terrain.elevation_m({45.1, 10.0});
  const double north_german_plain = terrain.elevation_m({52.5, 10.0});
  EXPECT_GT(alps, 1500.0);
  EXPECT_GT(alps, north_german_plain + 1000.0);
  EXPECT_LT(north_german_plain, 600.0);
  (void)po_valley;
}

TEST(SyntheticTerrain, NonNegativeEverywhereProperty) {
  const auto region = contiguous_us();
  const SyntheticTerrain terrain = region.make_terrain();
  Rng rng(21);
  for (int i = 0; i < 5000; ++i) {
    const geo::LatLon p{rng.uniform(region.box.lat_min, region.box.lat_max),
                        rng.uniform(region.box.lon_min, region.box.lon_max)};
    EXPECT_GE(terrain.elevation_m(p), 0.0);
    EXPECT_GE(terrain.clutter_m(p), 0.0);
    EXPECT_LE(terrain.clutter_m(p), 24.0 + 1e-9);
  }
}

TEST(Flatland, IsFlat) {
  const auto region = flatland({.lat_min = 30, .lat_max = 40,
                                .lon_min = -100, .lon_max = -90});
  const SyntheticTerrain terrain = region.make_terrain();
  EXPECT_DOUBLE_EQ(terrain.elevation_m({35.0, -95.0}), 100.0);
  EXPECT_DOUBLE_EQ(terrain.clutter_m({35.0, -95.0}), 0.0);
}

TEST(RasterTerrain, MatchesSourceWithinTolerance) {
  const auto region = contiguous_us();
  const SyntheticTerrain source = region.make_terrain();
  const BoundingBox patch{.lat_min = 38.0, .lat_max = 41.0,
                          .lon_min = -106.0, .lon_max = -102.0};
  const RasterTerrain raster(source, patch, 0.01);
  Rng rng(23);
  for (int i = 0; i < 500; ++i) {
    const geo::LatLon p{rng.uniform(38.05, 40.95), rng.uniform(-105.95, -102.05)};
    // 0.01 deg cells ~1.1 km; synthetic terrain slope is bounded, so the
    // bilinear error stays small relative to mountain heights.
    EXPECT_NEAR(raster.elevation_m(p), source.elevation_m(p), 60.0);
  }
}

TEST(RasterTerrain, ClampsOutsideBox) {
  const auto region = flatland({.lat_min = 30, .lat_max = 31,
                                .lon_min = -100, .lon_max = -99});
  const SyntheticTerrain source = region.make_terrain();
  const RasterTerrain raster(source, region.box, 0.05);
  EXPECT_DOUBLE_EQ(raster.elevation_m({29.0, -100.5}), 100.0);
  EXPECT_DOUBLE_EQ(raster.elevation_m({35.0, -50.0}), 100.0);
}

TEST(RasterTerrain, RejectsDegenerateBox) {
  const auto region = contiguous_us();
  const SyntheticTerrain source = region.make_terrain();
  EXPECT_THROW(RasterTerrain(source,
                             {.lat_min = 40, .lat_max = 40, .lon_min = -100,
                              .lon_max = -90},
                             0.01),
               Error);
}

TEST(Profile, EndpointsAndMonotoneDistance) {
  const auto region = contiguous_us();
  const RasterTerrain terrain = region.make_raster_terrain();
  const geo::LatLon a{41.88, -87.63};  // Chicago
  const geo::LatLon b{41.81, -86.47};  // Galien, MI (the paper's 96 km hop)
  const auto profile = build_profile(terrain, a, b, 0.5);
  ASSERT_GE(profile.size(), 2u);
  EXPECT_NEAR(profile.total_km, geo::distance_km(a, b), 1e-9);
  EXPECT_DOUBLE_EQ(profile.dist_km.front(), 0.0);
  EXPECT_NEAR(profile.dist_km.back(), profile.total_km, 1e-9);
  for (std::size_t i = 1; i < profile.size(); ++i) {
    EXPECT_GT(profile.dist_km[i], profile.dist_km[i - 1]);
  }
  EXPECT_EQ(profile.ground_m.size(), profile.clutter_m.size());
}

TEST(Profile, StepControlsResolution) {
  const auto region = flatland({.lat_min = 30, .lat_max = 40,
                                .lon_min = -100, .lon_max = -90});
  const SyntheticTerrain terrain = region.make_terrain();
  const geo::LatLon a{35.0, -98.0};
  const geo::LatLon b{35.0, -97.0};
  const auto coarse = build_profile(terrain, a, b, 10.0);
  const auto fine = build_profile(terrain, a, b, 0.1);
  EXPECT_LT(coarse.size(), fine.size());
  EXPECT_THROW(build_profile(terrain, a, b, -1.0), Error);
}

}  // namespace
}  // namespace cisp::terrain
