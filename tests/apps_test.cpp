// Unit tests for the application models: gaming frame times (Fig. 12
// mechanism), the web replayer (Fig. 13 mechanism), and the §8
// cost-benefit arithmetic against the paper's published numbers.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/econ.hpp"
#include "apps/gaming.hpp"
#include "apps/web.hpp"
#include "util/error.hpp"

namespace cisp::apps {
namespace {

TEST(Gaming, ConventionalGrowsLinearlyWithRtt) {
  const auto at100 = conventional_frame_time(100.0);
  const auto at300 = conventional_frame_time(300.0);
  EXPECT_NEAR(at300.mean_ms - at100.mean_ms, 200.0, 5.0);
}

TEST(Gaming, AugmentationFlattensFrameTime) {
  // Fig. 12: with the low-latency fast path, frame time grows at ~1/3 the
  // slope and stays far below conventional-only at high RTTs.
  const auto conv = conventional_frame_time(300.0);
  const auto fast = augmented_frame_time(300.0);
  EXPECT_LT(fast.mean_ms, conv.mean_ms - 150.0);
  const auto conv0 = conventional_frame_time(0.0);
  const auto fast0 = augmented_frame_time(0.0);
  // At zero network latency both reduce to processing + tick alignment.
  EXPECT_NEAR(conv0.mean_ms, fast0.mean_ms, 3.0);
  // Slope check.
  const double conv_slope =
      (conv.mean_ms - conv0.mean_ms) / 300.0;
  const double fast_slope =
      (fast.mean_ms - fast0.mean_ms) / 300.0;
  EXPECT_NEAR(conv_slope, 1.0, 0.05);
  EXPECT_NEAR(fast_slope, 1.0 / 3.0, 0.05);
}

TEST(Gaming, SpeculationMissesRaiseTail) {
  GamingParams hit_all;
  hit_all.speculation_hit_rate = 1.0;
  GamingParams miss_some;
  miss_some.speculation_hit_rate = 0.85;
  const auto clean = augmented_frame_time(240.0, hit_all);
  const auto missy = augmented_frame_time(240.0, miss_some);
  EXPECT_GT(missy.p95_ms, clean.p95_ms + 50.0);
}

TEST(Gaming, FatClientIsPureRttCut) {
  EXPECT_NEAR(fat_client_rtt_ms(120.0), 40.0, 1e-9);
}

TEST(Gaming, RejectsNegativeRtt) {
  EXPECT_THROW(conventional_frame_time(-1.0), cisp::Error);
}

TEST(Web, CorpusShapeAndDeterminism) {
  const auto corpus = generate_corpus();
  ASSERT_EQ(corpus.size(), 80u);
  const auto corpus2 = generate_corpus();
  EXPECT_EQ(corpus[0].objects.size(), corpus2[0].objects.size());
  for (const auto& page : corpus) {
    EXPECT_GE(page.objects.size(), 4u);
    EXPECT_LE(page.objects.size(), 220u);
    EXPECT_EQ(page.objects[0].depth, 0);
    EXPECT_GE(page.base_rtt_ms, 15.0);
    EXPECT_LE(page.base_rtt_ms, 250.0);
  }
}

TEST(Web, FullRttReductionCutsPltButLessThanProportionally) {
  const auto corpus = generate_corpus();
  Samples baseline;
  Samples cisp;
  for (const auto& page : corpus) {
    ReplayParams base;
    ReplayParams fast;
    fast.up_scale = 0.33;
    fast.down_scale = 0.33;
    baseline.add(replay_page(page, base).page_load_time_ms);
    cisp.add(replay_page(page, fast).page_load_time_ms);
  }
  const double reduction = 1.0 - cisp.median() / baseline.median();
  // Paper Fig 13(a): 31% median PLT reduction from a 66% RTT reduction —
  // well below 66% because of non-network time.
  EXPECT_GT(reduction, 0.18);
  EXPECT_LT(reduction, 0.48);
}

TEST(Web, SelectiveGivesMostOfTheBenefitForFewBytes) {
  const auto corpus = generate_corpus();
  Samples baseline;
  Samples selective;
  std::size_t up = 0;
  std::size_t down = 0;
  for (const auto& page : corpus) {
    ReplayParams base;
    ReplayParams sel;
    sel.up_scale = 0.33;  // client->server only
    baseline.add(replay_page(page, base).page_load_time_ms);
    const auto result = replay_page(page, sel);
    selective.add(result.page_load_time_ms);
    up += result.bytes_up;
    down += result.bytes_down;
  }
  const double reduction = 1.0 - selective.median() / baseline.median();
  EXPECT_GT(reduction, 0.08);
  // Bytes riding cISP: requests only — paper reports 8.5%.
  const double up_fraction =
      static_cast<double>(up) / static_cast<double>(up + down);
  EXPECT_LT(up_fraction, 0.15);
  EXPECT_GT(up_fraction, 0.002);
}

TEST(Web, ObjectLoadTimesImproveMoreThanPlt) {
  // Paper: OLTs drop ~49% for the same 66% RTT cut (less non-network
  // overhead per object than per page).
  const auto corpus = generate_corpus();
  Samples olt_base;
  Samples olt_cisp;
  Samples plt_base;
  Samples plt_cisp;
  for (const auto& page : corpus) {
    ReplayParams base;
    ReplayParams fast;
    fast.up_scale = 0.33;
    fast.down_scale = 0.33;
    auto rb = replay_page(page, base);
    auto rc = replay_page(page, fast);
    olt_base.add_all(rb.object_load_times_ms.values());
    olt_cisp.add_all(rc.object_load_times_ms.values());
    plt_base.add(rb.page_load_time_ms);
    plt_cisp.add(rc.page_load_time_ms);
  }
  const double olt_reduction = 1.0 - olt_cisp.median() / olt_base.median();
  const double plt_reduction = 1.0 - plt_cisp.median() / plt_base.median();
  EXPECT_GT(olt_reduction, plt_reduction);
  EXPECT_GT(olt_reduction, 0.35);
  EXPECT_LE(olt_reduction, 0.665);
}

TEST(Web, ReplayRejectsBadInput) {
  WebPage page;
  EXPECT_THROW(replay_page(page), cisp::Error);
}

TEST(Econ, WebSearchMatchesPaperNumbers) {
  // Paper §8: +200 ms -> $87M/yr and $1.84/GB; +400 ms -> $177M and $3.74.
  EXPECT_NEAR(web_search_profit_usd_per_year(200.0), 87e6, 10e6);
  EXPECT_NEAR(web_search_profit_usd_per_year(400.0), 177e6, 15e6);
  EXPECT_NEAR(web_search_value_per_gb(200.0), 1.84, 0.25);
  EXPECT_NEAR(web_search_value_per_gb(400.0), 3.74, 0.40);
}

TEST(Econ, EcommerceMatchesPaperRange) {
  // Paper §8: 200 ms saved, <10% of bytes on cISP -> $3.26-$22.82 per GB.
  const auto range = ecommerce_value_per_gb(200.0);
  EXPECT_NEAR(range.low_usd_per_gb, 3.26, 0.40);
  EXPECT_NEAR(range.high_usd_per_gb, 22.82, 2.0);
  EXPECT_LT(range.low_usd_per_gb, range.high_usd_per_gb);
}

TEST(Econ, GamingMatchesPaperNumbers) {
  // Paper §8: 8 h/day at 10 Kbps is 1.08 GB/month; $4/mo -> >= $3.7/GB.
  EXPECT_NEAR(gaming_gb_per_month(), 1.08, 0.05);
  EXPECT_NEAR(gaming_value_per_gb(), 3.7, 0.2);
}

TEST(Econ, ValueExceedsCost) {
  // The paper's bottom line: every per-GB value estimate clears the $0.81
  // cost estimate.
  const double cost = 0.81;
  EXPECT_GT(web_search_value_per_gb(200.0), cost);
  EXPECT_GT(ecommerce_value_per_gb(200.0).low_usd_per_gb, cost);
  EXPECT_GT(gaming_value_per_gb(), cost);
}

TEST(Econ, RejectsNegativeSpeedup) {
  EXPECT_THROW(web_search_profit_usd_per_year(-5.0), cisp::Error);
  EXPECT_THROW(ecommerce_value_per_gb(-5.0), cisp::Error);
}

}  // namespace
}  // namespace cisp::apps
