// Tests for the structured experiment stack above the engine: ResultSet
// rendering golden-files (CSV/JSON), serialization round-trips, registry
// listing and glob matching against the real catalog (this binary links
// every bench/example registration TU), --set parameter routing through the
// CLI, and the (name, params, seed)-keyed result cache.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <limits>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/diff.hpp"
#include "engine/experiment.hpp"
#include "engine/report.hpp"
#include "engine/result.hpp"
#include "engine/runner.hpp"
#include "util/error.hpp"

namespace cisp::engine {
namespace {

// ---------------------------------------------------------------------------
// Test experiments registered into the process-wide instance (alongside the
// real bench/example catalog linked into this binary).
// ---------------------------------------------------------------------------

std::atomic<int> g_probe_executions{0};

const RegisterExperiment kParamEcho{
    {.name = "unit_param_echo",
     .description = "echoes its parameters (test fixture)",
     .tags = {"test"},
     .params = {{"x", "1.5", "a real knob"},
                {"label", "none", "a text knob"}}},
    [](const ExperimentContext& ctx) {
      ResultSet set;
      auto& t = set.add_table("unit_param_echo", "echo",
                              {"x", "label", "seed", "fast"});
      t.row({ctx.params.real("x", 1.5), ctx.params.text("label", "none"),
             static_cast<std::int64_t>(ctx.base_seed),
             ctx.fast ? "fast" : "full"});
      return set;
    }};

const RegisterExperiment kCacheProbe{
    {.name = "unit_cache_probe",
     .description = "counts executions (test fixture)",
     .tags = {"test"},
     .params = {{"x", "0", "cache key knob"}}},
    [](const ExperimentContext& ctx) {
      ++g_probe_executions;
      ResultSet set;
      set.add_table("unit_cache_probe", "probe", {"x", "seed"})
          .row({ctx.params.real("x", 0.0),
                static_cast<std::int64_t>(ctx.base_seed)});
      return set;
    }};

const RegisterExperiment kEmpty{
    {.name = "unit_empty",
     .description = "returns no rows (test fixture)",
     .tags = {"test"}},
    [](const ExperimentContext&) { return ResultSet{}; }};

/// A unique scratch directory per test, removed on destruction.
struct TempDir {
  explicit TempDir(const std::string& stem) {
    path = (std::filesystem::temp_directory_path() / ("cisp-runner-test" /
           std::filesystem::path(stem))).string();
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string path;
};

ResultSet sample_set() {
  ResultSet set;
  auto& t = set.add_table("sample", "Sample, \"quoted\" title",
                          {"real", "int", "text", "money", "null"});
  t.row({Value::real(1.25, 3), 42, "plain", Value::money(0.815), Value{}});
  t.row({Value::real(-0.5, 1), -7, "comma, \"quote\"", Value::money(12.0, 0),
         Value{}});
  set.add_table("second", "Second table", {"only"}).row({"cell"});
  set.note("a note\nwith a newline and a\ttab");
  return set;
}

// ---------------------------------------------------------------------------
// Rendering golden files
// ---------------------------------------------------------------------------

TEST(Report, CsvGolden) {
  std::ostringstream os;
  render_csv(sample_set().table("sample"), os);
  EXPECT_EQ(os.str(),
            "real,int,text,money,null\n"
            "1.250,42,plain,$0.81,-\n"
            "-0.5,-7,\"comma, \"\"quote\"\"\",$12,-\n");
}

TEST(Report, JsonGolden) {
  std::ostringstream os;
  ResultSet set;
  set.add_table("t", "Title", {"a", "b", "c"})
      .row({Value::real(2.0, 2), "x\"y", Value{}});
  set.note("line1\nline2");
  render_json(set, "exp", os);
  EXPECT_EQ(os.str(),
            "{\"experiment\": \"exp\", \"tables\": [{\"slug\": \"t\", "
            "\"title\": \"Title\", \"columns\": [\"a\", \"b\", \"c\"], "
            "\"rows\": [[2.00, \"x\\\"y\", null]]}], "
            "\"notes\": [\"line1\\nline2\"]}\n");
}

TEST(Report, PrettyRendersTablesAndNotes) {
  std::ostringstream os;
  render_pretty(sample_set(), os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Sample, \"quoted\" title"), std::string::npos);
  EXPECT_NE(out.find("$0.81"), std::string::npos);
  EXPECT_NE(out.find("a note\nwith a newline"), std::string::npos);
}

TEST(Report, CsvDirWritesOneFilePerTable) {
  TempDir dir("cisp-csvdir");
  const auto paths = write_csv_dir(sample_set(), dir.path);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_TRUE(std::filesystem::exists(
      std::filesystem::path(dir.path) / "sample.csv"));
  EXPECT_TRUE(std::filesystem::exists(
      std::filesystem::path(dir.path) / "second.csv"));
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

TEST(ResultSerialization, RoundTripsExactly) {
  const ResultSet original = sample_set();
  std::stringstream buffer;
  serialize(original, buffer);
  const ResultSet restored = deserialize(buffer);
  EXPECT_TRUE(original == restored);
}

TEST(ResultSerialization, RejectsMalformedInput) {
  std::stringstream not_magic("something else\n");
  EXPECT_THROW((void)deserialize(not_magic), Error);
  std::stringstream truncated("cisp-result-v1\ntable a\tb\ncolumns c\n");
  EXPECT_THROW((void)deserialize(truncated), Error);
}

// ---------------------------------------------------------------------------
// Catalog: the real registrations linked into this binary
// ---------------------------------------------------------------------------

TEST(Catalog, ListsAllMigratedExperiments) {
  const auto specs = ExperimentRegistry::instance().list();
  // 18 bench + 6 examples + the 3 test fixtures above.
  EXPECT_GE(specs.size(), 24u + 3u);
  for (const char* name :
       {"fig02_solver_scaling", "fig03_us_network", "fig04a_budget_sweep",
        "fig04b_disjoint_paths", "fig04c_cost_throughput",
        "fig05_perturbation", "fig06_pacing", "fig07_weather", "fig08_europe",
        "fig09_traffic_models", "fig10_tower_constraints", "fig11_traffic_mix",
        "fig12_gaming", "fig13_web", "sec8_cost_benefit", "ablation_routing",
        "ablation_technology", "ablation_weather_adaptive", "quickstart",
        "us_backbone", "europe_backbone", "budget_evolution",
        "weather_resilience", "interactive_apps"}) {
    EXPECT_TRUE(ExperimentRegistry::instance().contains(name))
        << "missing registration: " << name;
  }
}

TEST(Catalog, GlobSelectsSubsets) {
  const auto& registry = ExperimentRegistry::instance();
  const auto fig04 = registry.match("fig04*");
  ASSERT_EQ(fig04.size(), 3u);
  EXPECT_EQ(fig04[0], "fig04a_budget_sweep");
  EXPECT_EQ(fig04[1], "fig04b_disjoint_paths");
  EXPECT_EQ(fig04[2], "fig04c_cost_throughput");
  EXPECT_EQ(registry.match("ablation_*").size(), 3u);
  EXPECT_TRUE(registry.match("no_such_experiment_*").empty());
}

TEST(Catalog, SpecsDeclareMetadata) {
  const auto& spec =
      ExperimentRegistry::instance().spec("fig07_weather");
  EXPECT_FALSE(spec.description.empty());
  EXPECT_TRUE(spec.has_param("days"));
  EXPECT_FALSE(spec.tags.empty());
}

// ---------------------------------------------------------------------------
// Runner: parameter routing, cache, CLI
// ---------------------------------------------------------------------------

int cli(const std::vector<std::string>& args, std::string* out_text = nullptr,
        std::string* err_text = nullptr) {
  std::vector<const char*> argv = {"cisp_experiments"};
  for (const auto& arg : args) argv.push_back(arg.c_str());
  std::ostringstream out;
  std::ostringstream err;
  const int code = run_cli(static_cast<int>(argv.size()), argv.data(), out,
                           err);
  if (out_text != nullptr) *out_text = out.str();
  if (err_text != nullptr) *err_text = err.str();
  return code;
}

TEST(RunnerCli, ListShowsCatalog) {
  std::string out;
  ASSERT_EQ(cli({"list"}, &out), 0);
  EXPECT_NE(out.find("fig04a_budget_sweep"), std::string::npos);
  EXPECT_NE(out.find("quickstart"), std::string::npos);
  std::string described;
  ASSERT_EQ(cli({"list", "--describe"}, &described), 0);
  EXPECT_NE(described.find("--set days=<value>"), std::string::npos);
}

TEST(RunnerCli, SetOverridesReachTheExperiment) {
  std::string out;
  ASSERT_EQ(cli({"run", "unit_param_echo", "--no-cache", "--seed", "99",
                 "--set", "x=42.5", "--set", "label=hello"},
                &out),
            0);
  EXPECT_NE(out.find("42.500"), std::string::npos);
  EXPECT_NE(out.find("hello"), std::string::npos);
  EXPECT_NE(out.find("99"), std::string::npos);
}

TEST(RunnerCli, UndeclaredSetKeyFailsForSingleExperiment) {
  std::string err;
  EXPECT_NE(cli({"run", "unit_param_echo", "--no-cache", "--set",
                 "nope=1"},
                nullptr, &err),
            0);
  EXPECT_NE(err.find("does not declare parameter 'nope'"), std::string::npos);
}

TEST(RunnerCli, RequireRowsFailsEmptyResultSets) {
  std::string err;
  EXPECT_NE(cli({"run", "unit_empty", "--no-cache", "--require-rows"},
                nullptr, &err),
            0);
  EXPECT_NE(err.find("empty ResultSet"), std::string::npos);
  EXPECT_EQ(cli({"run", "unit_empty", "--no-cache"}), 0);
}

TEST(RunnerCli, JsonFlagRendersJson) {
  std::string out;
  ASSERT_EQ(cli({"run", "unit_param_echo", "--no-cache", "--json"}, &out), 0);
  EXPECT_NE(out.find("{\"experiment\": \"unit_param_echo\""),
            std::string::npos);
}

TEST(CacheKey, DependsOnNameParamsSeedAndFast) {
  Params params;
  const std::uint64_t base = cache_key("exp", params, 0, false);
  EXPECT_EQ(base, cache_key("exp", params, 0, false));  // stable
  EXPECT_NE(base, cache_key("exp2", params, 0, false));
  EXPECT_NE(base, cache_key("exp", params, 1, false));
  EXPECT_NE(base, cache_key("exp", params, 0, true));
  Params with_param;
  with_param.set("x", "1");
  EXPECT_NE(base, cache_key("exp", with_param, 0, false));
}

TEST(CacheKey, EmbedsTheCodeVersion) {
  // The key must change across rebuilds: same experiment/params/seed under
  // a different code version is a different key, and the default version
  // is the build stamp baked into this binary.
  Params params;
  EXPECT_FALSE(build_stamp().empty());
  EXPECT_EQ(cache_key("exp", params, 0, false),
            cache_key("exp", params, 0, false, build_stamp()));
  EXPECT_NE(cache_key("exp", params, 0, false, "build-A"),
            cache_key("exp", params, 0, false, "build-B"));
}

TEST(Cache, RebuildInvalidatesEntriesFromTheOldBuild) {
  // Simulated rebuild via the cache_version override: an entry stored
  // under version A must be a miss under version B (recompute), and a hit
  // again under A — hit, miss-after-"rebuild", hit.
  TempDir dir("cisp-cache-version");
  RunnerOptions options;
  options.cache_dir = dir.path;
  options.cache_version = "build-A";
  std::ostringstream log;

  g_probe_executions = 0;
  EXPECT_FALSE(run_experiment("unit_cache_probe", options, log).cache_hit);
  EXPECT_EQ(g_probe_executions.load(), 1);
  EXPECT_TRUE(run_experiment("unit_cache_probe", options, log).cache_hit);
  EXPECT_EQ(g_probe_executions.load(), 1);

  options.cache_version = "build-B";  // the code changed
  EXPECT_FALSE(run_experiment("unit_cache_probe", options, log).cache_hit);
  EXPECT_EQ(g_probe_executions.load(), 2);

  options.cache_version = "build-A";  // old entries still keyed correctly
  EXPECT_TRUE(run_experiment("unit_cache_probe", options, log).cache_hit);
  EXPECT_EQ(g_probe_executions.load(), 2);
}

TEST(CacheKey, SeparatorCharactersInValuesCannotCollide) {
  // a="1|b=2" must not canonicalize identically to {a=1, b=2}.
  Params smuggled;
  smuggled.set("a", "1|b=2");
  Params split;
  split.set("a", "1");
  split.set("b", "2");
  EXPECT_NE(cache_key("exp", smuggled, 0, false),
            cache_key("exp", split, 0, false));
}

TEST(Cache, SecondRunHitsAndSkipsRecomputation) {
  TempDir dir("cisp-cache");
  RunnerOptions options;
  options.cache_dir = dir.path;
  options.seed = 7;
  std::ostringstream log;

  g_probe_executions = 0;
  const RunReport first = run_experiment("unit_cache_probe", options, log);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(g_probe_executions.load(), 1);

  const RunReport second = run_experiment("unit_cache_probe", options, log);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(g_probe_executions.load(), 1);  // skipped recomputation
  EXPECT_TRUE(first.results == second.results);
  EXPECT_NE(log.str().find("[cache] hit"), std::string::npos);

  // Different seed or parameter: a miss.
  options.seed = 8;
  EXPECT_FALSE(run_experiment("unit_cache_probe", options, log).cache_hit);
  EXPECT_EQ(g_probe_executions.load(), 2);
  options.overrides.set("x", "3");
  EXPECT_FALSE(run_experiment("unit_cache_probe", options, log).cache_hit);
  EXPECT_EQ(g_probe_executions.load(), 3);
}

TEST(Cache, ProvenanceIsStampedAndRoundTripsThroughTheCache) {
  TempDir dir("cisp-provenance");
  RunnerOptions options;
  options.cache_dir = dir.path;
  options.seed = 11;
  options.fast = true;
  options.threads = 2;
  std::ostringstream log;
  g_probe_executions = 0;

  const RunReport fresh = run_experiment("unit_cache_probe", options, log);
  ASSERT_FALSE(fresh.cache_hit);
  EXPECT_EQ(fresh.results.provenance_value("experiment"), "unit_cache_probe");
  EXPECT_EQ(fresh.results.provenance_value("seed"), "11");
  EXPECT_EQ(fresh.results.provenance_value("fast"), "1");
  EXPECT_EQ(fresh.results.provenance_value("threads"), "2");
  EXPECT_EQ(fresh.results.provenance_value("build"),
            std::string(build_stamp()));
  EXPECT_FALSE(fresh.results.provenance_value("wall_ms").empty());
  EXPECT_EQ(fresh.results.provenance_value("absent_key"), "");

  // The cache entry carries the provenance of the run that produced it.
  const RunReport cached = run_experiment("unit_cache_probe", options, log);
  ASSERT_TRUE(cached.cache_hit);
  EXPECT_EQ(cached.results.provenance_value("experiment"),
            "unit_cache_probe");
  EXPECT_EQ(cached.results.provenance_value("seed"), "11");

  // Provenance describes the run, not the result: equality and diff both
  // ignore it, so entries from different machines / thread counts still
  // compare byte-identical.
  ResultSet a = fresh.results;
  ResultSet b = cached.results;
  b.set_provenance("threads", "64");
  b.set_provenance("extra", "only-here");
  EXPECT_TRUE(a == b);
  EXPECT_TRUE(diff_result_sets(a, b).identical());

  // And no render sink leaks it.
  std::ostringstream pretty;
  render_pretty(b, pretty);
  EXPECT_EQ(pretty.str().find("only-here"), std::string::npos);
  std::ostringstream json;
  render_json(b, "unit_cache_probe", json);
  EXPECT_EQ(json.str().find("only-here"), std::string::npos);
}

TEST(Cache, CorruptEntryIsIgnoredAndRecomputed) {
  TempDir dir("cisp-cache-corrupt");
  RunnerOptions options;
  options.cache_dir = dir.path;
  std::ostringstream log;
  g_probe_executions = 0;
  (void)run_experiment("unit_cache_probe", options, log);
  ASSERT_EQ(g_probe_executions.load(), 1);
  // Truncate every cache entry.
  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    std::ofstream(entry.path()) << "garbage";
  }
  const RunReport report = run_experiment("unit_cache_probe", options, log);
  EXPECT_FALSE(report.cache_hit);
  EXPECT_EQ(g_probe_executions.load(), 2);

  // A structurally valid file with a malformed cell tag throws from the
  // std::stoi path (std::invalid_argument, not cisp::Error) — it must
  // also be treated as a miss, not fail the run.
  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    std::ofstream(entry.path())
        << "cisp-result-v1\ntable t\tT\ncolumns c\nrow rX:1.0\nend\n";
  }
  const RunReport after_bad_tag =
      run_experiment("unit_cache_probe", options, log);
  EXPECT_FALSE(after_bad_tag.cache_hit);
  EXPECT_EQ(g_probe_executions.load(), 3);
}

// ---------------------------------------------------------------------------
// diff: cell-by-cell ResultSet comparison
// ---------------------------------------------------------------------------

TEST(Diff, IdenticalSetsHaveNoDifferences) {
  const DiffReport report = diff_result_sets(sample_set(), sample_set());
  EXPECT_TRUE(report.identical());
  EXPECT_GT(report.cells_compared, 0u);
  EXPECT_EQ(report.differing_cells, 0u);
}

TEST(Diff, RealCellsRespectTolerance) {
  ResultSet a;
  a.add_table("t", "T", {"x"}).row({Value::real(1.000, 3)});
  ResultSet b;
  b.add_table("t", "T", {"x"}).row({Value::real(1.004, 3)});

  EXPECT_FALSE(diff_result_sets(a, b).identical());
  DiffOptions absolute;
  absolute.abs_tolerance = 0.01;
  EXPECT_TRUE(diff_result_sets(a, b, absolute).identical());
  DiffOptions relative;
  relative.rel_tolerance = 0.01;
  EXPECT_TRUE(diff_result_sets(a, b, relative).identical());
}

TEST(Diff, NonFiniteCellsNeverMatchFiniteOnes) {
  // inf * rel_tolerance must not swallow a finite counterpart; same-value
  // non-finite cells still compare equal.
  const double inf = std::numeric_limits<double>::infinity();
  ResultSet a;
  a.add_table("t", "T", {"x", "y"})
      .row({Value::real(inf, 3), Value::real(inf, 3)});
  ResultSet b;
  b.add_table("t", "T", {"x", "y"})
      .row({Value::real(1.0, 3), Value::real(inf, 3)});
  DiffOptions generous;
  generous.rel_tolerance = 0.5;
  generous.abs_tolerance = 1e9;
  const DiffReport report = diff_result_sets(a, b, generous);
  EXPECT_EQ(report.differing_cells, 1u);  // x differs, y (inf vs inf) matches

  ResultSet c;
  c.add_table("t", "T", {"x", "y"})
      .row({Value::real(-inf, 3), Value::real(inf, 3)});
  EXPECT_EQ(diff_result_sets(a, c, generous).differing_cells, 1u);
}

TEST(Diff, ReportsStructuralAndCellMismatches) {
  ResultSet a;
  a.add_table("shared", "S", {"x", "label"})
      .row({Value::real(1.0, 2), "same"});
  a.add_table("only_a", "A", {"x"}).row({1});
  ResultSet b;
  b.add_table("shared", "S", {"x", "label"})
      .row({Value::real(2.0, 2), "same"});

  const DiffReport report = diff_result_sets(a, b);
  ASSERT_EQ(report.structural.size(), 1u);
  EXPECT_NE(report.structural[0].find("only_a"), std::string::npos);
  EXPECT_EQ(report.differing_cells, 1u);
  ASSERT_EQ(report.cells.size(), 1u);
  EXPECT_NE(report.cells[0].location.find("shared[0][0]"),
            std::string::npos);
  // Integer/text cells always compare exactly, reals by kind first.
  ResultSet c;
  c.add_table("shared", "S", {"x", "label"}).row({1, "same"});
  EXPECT_FALSE(diff_result_sets(a, c).identical());
}

TEST(DiffCli, ComparesCachedRunsEndToEnd) {
  // Two cached runs of the echo fixture with different x: the diff
  // subcommand must resolve name prefixes in --cache-dir, exit nonzero on
  // the difference, and pass under a generous tolerance.
  TempDir dir("cisp-diff-cli");
  ASSERT_EQ(cli({"run", "unit_param_echo", "--cache-dir", dir.path,
                 "--set", "x=1.0"}),
            0);
  ASSERT_EQ(cli({"run", "unit_param_echo", "--cache-dir", dir.path,
                 "--set", "x=1.5"}),
            0);
  std::vector<std::string> entries;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    entries.push_back(entry.path().string());
  }
  ASSERT_EQ(entries.size(), 2u);
  std::sort(entries.begin(), entries.end());

  std::string out;
  EXPECT_EQ(cli({"diff", entries[0], entries[1]}, &out), 1);
  EXPECT_NE(out.find("1 differ"), std::string::npos);
  EXPECT_EQ(cli({"diff", entries[0], entries[1], "--tolerance", "1"}, &out),
            0);
  EXPECT_NE(out.find("identical within tolerance"), std::string::npos);
  // A file diffed against itself is identical with zero tolerance.
  EXPECT_EQ(cli({"diff", entries[0], entries[0]}), 0);
  // Prefix resolution: unique prefixes resolve inside --cache-dir; the
  // shared experiment-name prefix is ambiguous.
  std::string err;
  EXPECT_EQ(cli({"diff", "unit_param_echo", "unit_param_echo",
                 "--cache-dir", dir.path},
                nullptr, &err),
            1);
  EXPECT_NE(err.find("ambiguous"), std::string::npos);
}

TEST(RunnerCli, CsvOutputIsIdenticalAcrossThreadCounts) {
  // The acceptance contract on real figure sweeps (fig04a at --threads 1
  // vs 4) exercised here on a cheap fixture: CSV bytes must not depend on
  // the thread count, and the cache key must not either.
  TempDir csv1("cisp-csv-t1");
  TempDir csv4("cisp-csv-t4");
  ASSERT_EQ(cli({"run", "unit_param_echo", "--no-cache", "--threads", "1",
                 "--csv-dir", csv1.path}),
            0);
  ASSERT_EQ(cli({"run", "unit_param_echo", "--no-cache", "--threads", "4",
                 "--csv-dir", csv4.path}),
            0);
  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  const std::string a =
      slurp(csv1.path + "/unit_param_echo.csv");
  const std::string b =
      slurp(csv4.path + "/unit_param_echo.csv");
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace cisp::engine
