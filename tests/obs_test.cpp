// Tests for the observability layer (src/obs/): metrics registry semantics
// (off-by-default, reset, snapshot ordering), the determinism contract —
// counter/histogram totals identical at every thread count, and sweep
// results byte-identical whether or not instrumentation is enabled — and
// Chrome trace-event JSON well-formedness (parseable document, matched B/E
// spans per thread).

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "engine/result.hpp"
#include "engine/sweep.hpp"
#include "net/monitors.hpp"
#include "net/node.hpp"
#include "net/sim.hpp"
#include "net/udp.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cisp::obs {
namespace {

/// Every obs test restores the global switches it flips: instruments are
/// process-wide, and other test suites in this binary assume they are off.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_metrics_enabled(false);
    set_trace_enabled(false);
    reset_metrics();
    clear_trace();
  }
  void TearDown() override { SetUp(); }
};

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST_F(ObsTest, InstrumentsAreNoopsWhileDisabled) {
  ASSERT_FALSE(metrics_enabled());
  Counter& c = counter("obs_test.disabled");
  Timer& t = timer("obs_test.disabled_timer");
  Histogram& h = histogram("obs_test.disabled_hist", {1.0, 10.0});
  c.add(5);
  t.record_ns(100);
  h.record(3.0);
  {
    const ScopedTimer scope(t);
  }
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(t.count(), 0u);
  EXPECT_EQ(h.total(), 0u);
}

TEST_F(ObsTest, CounterAccumulatesWhenEnabled) {
  set_metrics_enabled(true);
  Counter& c = counter("obs_test.counter");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Lookup by the same name returns the same instrument.
  EXPECT_EQ(&counter("obs_test.counter"), &c);
}

TEST_F(ObsTest, ResetZeroesValuesButKeepsIdentity) {
  set_metrics_enabled(true);
  Counter& c = counter("obs_test.reset_me");
  c.add(7);
  reset_metrics();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&counter("obs_test.reset_me"), &c);
  c.add(3);
  EXPECT_EQ(c.value(), 3u);
}

TEST_F(ObsTest, HistogramBucketsByUpperBound) {
  set_metrics_enabled(true);
  Histogram& h = histogram("obs_test.hist", {10.0, 100.0});
  h.record(3.0);    // <= 10
  h.record(10.0);   // <= 10 (bounds are inclusive)
  h.record(50.0);   // <= 100
  h.record(1e6);    // overflow
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST_F(ObsTest, ScopedTimerCountsScopes) {
  set_metrics_enabled(true);
  Timer& t = timer("obs_test.scoped");
  for (int i = 0; i < 3; ++i) {
    const ScopedTimer scope(t);
  }
  EXPECT_EQ(t.count(), 3u);
}

TEST_F(ObsTest, SnapshotIsSortedAndSkipsZeroRows) {
  set_metrics_enabled(true);
  counter("obs_test.snap_b").add(2);
  counter("obs_test.snap_a").add(1);
  counter("obs_test.snap_zero");  // registered but never incremented
  const auto rows = metrics_snapshot();
  std::vector<std::string> names;
  for (const auto& row : rows) {
    if (row.name.rfind("obs_test.snap_", 0) == 0) names.push_back(row.name);
  }
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "obs_test.snap_a");
  EXPECT_EQ(names[1], "obs_test.snap_b");
  // include_zero surfaces the idle instrument too.
  bool found_zero = false;
  for (const auto& row : metrics_snapshot(true)) {
    found_zero |= row.name == "obs_test.snap_zero";
  }
  EXPECT_TRUE(found_zero);
}

// ---------------------------------------------------------------------------
// Determinism: totals thread-invariant, results unperturbed
// ---------------------------------------------------------------------------

/// A sweep whose task function is a pure function of its Point, counting
/// work items into obs instruments along the way.
engine::SweepResult<double> counted_sweep(std::size_t threads) {
  engine::Grid grid;
  grid.axis("x", {1.0, 2.0, 3.0, 4.0, 5.0})
      .axis("y", {0.25, 0.5, 0.75})
      .replicates(2)
      .base_seed(42);
  return engine::run_sweep(
      grid,
      [](const engine::Point& p) {
        static Counter& items = counter("obs_test.sweep_items");
        static Histogram& seeds =
            histogram("obs_test.sweep_seed_lsb", {64.0, 192.0});
        items.add();
        seeds.record(static_cast<double>(p.seed() % 256));
        double acc = 0.0;
        for (int i = 1; i <= 50; ++i) {
          acc += std::sin(p.value("x") * i) * std::cos(p.value("y") + i) /
                 static_cast<double>(i);
        }
        return acc + static_cast<double>(p.seed() % 1000) * 1e-12;
      },
      {.threads = threads});
}

TEST_F(ObsTest, CounterTotalsIdenticalAtEveryThreadCount) {
  set_metrics_enabled(true);
  std::vector<std::uint64_t> item_totals;
  std::vector<std::vector<std::uint64_t>> bucket_totals;
  for (const std::size_t threads : {1u, 2u, 4u, 0u}) {
    reset_metrics();
    (void)counted_sweep(threads);
    item_totals.push_back(counter("obs_test.sweep_items").value());
    bucket_totals.push_back(
        histogram("obs_test.sweep_seed_lsb", {}).counts());
  }
  for (std::size_t i = 1; i < item_totals.size(); ++i) {
    EXPECT_EQ(item_totals[i], item_totals[0]) << "thread config " << i;
    EXPECT_EQ(bucket_totals[i], bucket_totals[0]) << "thread config " << i;
  }
  EXPECT_EQ(item_totals[0], 30u);  // 5 x 3 axis points x 2 replicates
}

TEST_F(ObsTest, ResultsByteIdenticalWithInstrumentationOnAndOff) {
  const auto serialize_sweep = [](const engine::SweepResult<double>& sweep) {
    engine::ResultSet set;
    auto& table = set.add_table("sweep", "sweep", {"task", "value"});
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      table.row({engine::Value::integer(static_cast<std::int64_t>(i)),
                 engine::Value::real(sweep.at(i), 12)});
    }
    std::ostringstream os;
    engine::serialize(set, os);
    return os.str();
  };

  const std::string plain = serialize_sweep(counted_sweep(2));

  set_metrics_enabled(true);
  set_trace_enabled(true);
  for (const std::size_t threads : {1u, 4u, 0u}) {
    EXPECT_EQ(serialize_sweep(counted_sweep(threads)), plain)
        << "instrumented run diverged at threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// DES instrumentation: per-kind event counters and the queue-depth histogram
// ---------------------------------------------------------------------------

namespace {

/// A small packet workload: 200 one-hop packets plus one generic closure.
/// Returns the delivery count (the result instrumentation must not change).
std::uint64_t des_metrics_workload(net::Simulator& sim) {
  net::Network network(sim, 2);
  const std::size_t l = network.add_duplex_link(0, 1, 1e9, 0.001);
  network.node(0).set_route(0, 1, &network.link(l));
  std::uint64_t delivered = 0;
  network.node(1).set_local_deliver([&](const net::Packet&) { ++delivered; });
  for (int i = 0; i < 200; ++i) {
    net::Packet p;
    p.src = 0;
    p.dst = 1;
    p.size_bytes = 500;
    network.inject(p);
  }
  sim.schedule(0.01, [] {});
  sim.run();
  return delivered;
}

}  // namespace

TEST_F(ObsTest, DesEventCountersSplitByKind) {
  set_metrics_enabled(true);
  net::Simulator sim;
  const std::uint64_t delivered = des_metrics_workload(sim);
  EXPECT_EQ(delivered, 200u);
  EXPECT_EQ(counter("sim.events.link_deliver").value(),
            sim.events_processed(net::EventKind::kLinkDeliver));
  EXPECT_EQ(counter("sim.events.link_done").value(), 200u);
  EXPECT_EQ(counter("sim.events.closure").value(), 1u);
  EXPECT_EQ(counter("sim.events.udp_emit").value(), 0u);
  // The queue-depth histogram sampled (401 events / 64 per sample).
  std::uint64_t samples = 0;
  for (const std::uint64_t c : histogram("sim.queue_depth", {}).counts()) {
    samples += c;
  }
  EXPECT_GE(samples, 5u);
}

TEST_F(ObsTest, DesCountersStayZeroWhileDisabled) {
  ASSERT_FALSE(metrics_enabled());
  net::Simulator sim;
  (void)des_metrics_workload(sim);
  // The simulator still counts (events_processed is part of its API)...
  EXPECT_EQ(sim.events_processed(net::EventKind::kLinkDeliver), 200u);
  // ...but no obs instrument recorded anything.
  EXPECT_EQ(counter("sim.events.link_deliver").value(), 0u);
  std::uint64_t samples = 0;
  for (const std::uint64_t c : histogram("sim.queue_depth", {}).counts()) {
    samples += c;
  }
  EXPECT_EQ(samples, 0u);
}

TEST_F(ObsTest, DesResultsByteIdenticalWithInstrumentationOnAndOff) {
  const auto run_once = [] {
    net::Simulator sim;
    net::Network network(sim, 2);
    const std::size_t l = network.add_duplex_link(0, 1, 2e6, 0.003, 20);
    network.node(0).set_route(0, 1, &network.link(l));
    net::FlowMonitor monitor;
    install_udp_sink(network, 1, monitor);
    net::UdpCbrSource source(network, monitor, 7, 0, 1, 3e6);
    source.start(0.0, 0.1, 1234);
    sim.run_until(0.2);
    return std::pair<double, double>(monitor.mean_delay_s(),
                                     monitor.loss_rate());
  };
  const auto plain = run_once();
  set_metrics_enabled(true);
  const auto instrumented = run_once();
  EXPECT_EQ(0, std::memcmp(&plain.first, &instrumented.first,
                           sizeof(double)));
  EXPECT_EQ(0, std::memcmp(&plain.second, &instrumented.second,
                           sizeof(double)));
  EXPECT_GT(counter("sim.events.udp_emit").value(), 0u);
}

// ---------------------------------------------------------------------------
// Trace collection and Chrome JSON
// ---------------------------------------------------------------------------

/// Minimal JSON structural validator: accepts exactly the value grammar
/// (objects / arrays / strings with escapes / numbers / true / false /
/// null) and demands the whole input is one value. Enough to guarantee
/// Perfetto and chrome://tracing can parse the document.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char ch = text_[pos_];
      if (ch == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(ch) < 0x20) return false;
      if (ch == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          if (pos_ + 4 >= text_.size()) return false;
          pos_ += 4;
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }
  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST_F(ObsTest, TraceCollectsMatchedSpansAcrossThreads) {
  set_trace_enabled(true);
  {
    const TraceSpan outer("obs_test.outer", "test");
    const TraceSpan inner("obs_test.inner", "test", "arg", 7.0);
    trace_instant("obs_test.marker", "test");
    trace_counter("obs_test.track", 1.5);
  }
  (void)counted_sweep(4);  // spans recorded from several worker threads
  set_trace_enabled(false);

  const auto events = trace_events();
  ASSERT_FALSE(events.empty());
  // Per-tid B/E stacks must balance with matching names.
  std::vector<std::vector<std::string>> stacks(64);
  for (const auto& event : events) {
    ASSERT_LT(event.tid, stacks.size());
    if (event.ph == 'B') {
      stacks[event.tid].push_back(event.name);
    } else if (event.ph == 'E') {
      ASSERT_FALSE(stacks[event.tid].empty()) << "E without B: " << event.name;
      EXPECT_EQ(stacks[event.tid].back(), event.name);
      stacks[event.tid].pop_back();
    }
  }
  for (const auto& stack : stacks) EXPECT_TRUE(stack.empty());
  // Timestamps are non-decreasing within each tid.
  std::vector<std::uint64_t> last_ts(64, 0);
  for (const auto& event : events) {
    EXPECT_GE(event.ts_ns, last_ts[event.tid]);
    last_ts[event.tid] = event.ts_ns;
  }
}

TEST_F(ObsTest, SpanEndsStayMatchedAcrossMidSpanDisable) {
  set_trace_enabled(true);
  {
    const TraceSpan span("obs_test.straddler", "test");
    set_trace_enabled(false);
  }
  std::size_t begins = 0;
  std::size_t ends = 0;
  for (const auto& event : trace_events()) {
    if (event.name != "obs_test.straddler") continue;
    begins += event.ph == 'B' ? 1 : 0;
    ends += event.ph == 'E' ? 1 : 0;
  }
  EXPECT_EQ(begins, 1u);
  EXPECT_EQ(ends, 1u);
}

TEST_F(ObsTest, ChromeTraceJsonIsWellFormed) {
  set_trace_enabled(true);
  {
    const TraceSpan span("needs \"escaping\"\n\t\\", "test", "idx", 3.0);
    trace_instant("obs_test.instant", "test", "value", 0.5);
    trace_counter("obs_test.kkt", 1e-9);
  }
  (void)counted_sweep(2);
  set_trace_enabled(false);

  std::ostringstream os;
  write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  // The escaped span name survives JSON encoding.
  EXPECT_NE(json.find("needs \\\"escaping\\\"\\n\\t\\\\"), std::string::npos);
  EXPECT_EQ(trace_dropped_events(), 0u);
}

TEST_F(ObsTest, ClearTraceDiscardsEvents) {
  set_trace_enabled(true);
  trace_instant("obs_test.gone");
  clear_trace();
  for (const auto& event : trace_events()) {
    EXPECT_NE(event.name, "obs_test.gone");
  }
}

}  // namespace
}  // namespace cisp::obs
