// Tests for the streaming timeline simulator (net/timeline): the warm
// path (incremental route repair + in-place demand rewrite + warm-started
// allocation) must be byte-identical to evaluating each epoch as an
// independent cell for the max-min backend, at every thread count; the
// alpha-fair warm path must match the cold path within the allocator's
// convergence tolerance; a timeline driven through the TrafficModel seam
// (FluidTrafficModel with route/derate overrides, the scenario_diurnal
// idiom) must agree byte-for-byte with the driver; the WarmState
// fingerprint must silently rebuild on a path change (never reuse stale
// structure); and the SLO fold must order its percentiles sensibly.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "geo/latlon.hpp"
#include "net/builder.hpp"
#include "net/control/route_repair.hpp"
#include "net/control/weather_coupling.hpp"
#include "net/flow/alpha_fair.hpp"
#include "net/flow/max_min.hpp"
#include "net/scenario/demand_scenario.hpp"
#include "net/timeline/timeline.hpp"
#include "net/traffic_model.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace cisp::net {
namespace {

// ---------------------------------------------------------------------------
// Synthetic planar fixture (same shape as control_test's): fiber chain +
// ring keeps everything connected, MW shortcuts give repair real choices.
// ---------------------------------------------------------------------------

struct Fixture {
  LinkPlan plan;
  std::vector<std::array<double, 2>> xy;
  flow::DemandMatrix base;
  std::vector<std::size_t> mw_links;

  [[nodiscard]] flow::DirectKmFn direct_km() const {
    const auto coords = xy;
    return [coords](std::uint32_t s, std::uint32_t t) {
      const double dx = coords[s][0] - coords[t][0];
      const double dy = coords[s][1] - coords[t][1];
      return std::sqrt(dx * dx + dy * dy);
    };
  }
};

void add_link(LinkPlan& plan, std::uint32_t a, std::uint32_t b, double gbps,
              double km, bool mw, double path_stretch = 1.0) {
  PlannedLink link;
  link.a = a;
  link.b = b;
  link.rate_bps = gbps * 1e9;
  link.latency_s = km * path_stretch / geo::kSpeedOfLightKmPerS;
  link.queue_packets = 100;
  link.is_mw = mw;
  plan.links.push_back(link);
}

Fixture make_fixture(std::uint64_t seed) {
  Fixture f;
  Rng rng(seed);
  const std::uint32_t n = 12;
  f.plan.node_count = n;
  for (std::uint32_t i = 0; i < n; ++i) {
    f.xy.push_back({rng.uniform(0.0, 2000.0), rng.uniform(0.0, 2000.0)});
  }
  const auto km = [&](std::uint32_t a, std::uint32_t b) {
    return std::hypot(f.xy[a][0] - f.xy[b][0], f.xy[a][1] - f.xy[b][1]);
  };
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    add_link(f.plan, i, i + 1, 400.0, km(i, i + 1), false, 1.8);
  }
  add_link(f.plan, 0, n - 1, 400.0, km(0, n - 1), false, 1.8);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto j =
        static_cast<std::uint32_t>((i + 2 + rng.uniform_index(4)) % n);
    if (j == i) continue;
    f.mw_links.push_back(f.plan.links.size());
    add_link(f.plan, i, j, rng.uniform(2.0, 20.0), km(i, j), true);
  }
  std::vector<flow::PairDemand> pairs;
  for (int d = 0; d < 24; ++d) {
    const auto s = static_cast<std::uint32_t>(rng.uniform_index(n));
    const auto t = static_cast<std::uint32_t>(rng.uniform_index(n));
    if (s == t) continue;
    pairs.push_back({s, t, 1 + rng.uniform_index(100),
                     rng.uniform(0.5e9, 3e9)});
  }
  f.base = flow::DemandMatrix::from_pairs(std::move(pairs));
  return f;
}

/// Deterministic per-epoch capacity-factor schedule with downs, derates
/// and calm (all-nominal) stretches — the calm repeats are what gives the
/// warm allocator identical routes to reuse structure on.
std::vector<std::vector<double>> make_schedule(const Fixture& f,
                                               std::size_t epochs) {
  std::vector<std::vector<double>> schedule;
  for (std::size_t e = 0; e < epochs; ++e) {
    std::vector<double> factors(f.plan.links.size(), 1.0);
    if (e % 4 == 1) {
      factors[f.mw_links[e % f.mw_links.size()]] = 0.0;  // binary down
    } else if (e % 4 == 2) {
      factors[f.mw_links[(e + 3) % f.mw_links.size()]] = 0.45;  // derate
    }
    // e % 4 in {0, 3}: all links nominal (calm epoch).
    schedule.push_back(std::move(factors));
  }
  return schedule;
}

scenario::DiurnalProfile make_diurnal(const Fixture& f) {
  scenario::DiurnalProfile diurnal;
  for (const auto& p : f.xy) diurnal.tz_offset_hours.push_back(p[0] / 200.0);
  return diurnal;
}

void expect_epochs_equal(const timeline::EpochStats& warm,
                         const timeline::EpochStats& cold) {
  // Byte-identity on every field the cold oracle fills (repair churn is a
  // warm-path-only observation).
  EXPECT_EQ(warm.utc_hour, cold.utc_hour);
  EXPECT_EQ(warm.growth_scale, cold.growth_scale);
  EXPECT_EQ(warm.offered_bps, cold.offered_bps);
  EXPECT_EQ(warm.delivered_bps, cold.delivered_bps);
  EXPECT_EQ(warm.served_fraction, cold.served_fraction);
  EXPECT_EQ(warm.p99_stretch, cold.p99_stretch);
  EXPECT_EQ(warm.jain_fairness, cold.jain_fairness);
  EXPECT_EQ(warm.denied_fraction, cold.denied_fraction);
  EXPECT_EQ(warm.available_fraction, cold.available_fraction);
  EXPECT_EQ(warm.mean_link_utilization, cold.mean_link_utilization);
  EXPECT_EQ(warm.max_link_utilization, cold.max_link_utilization);
  EXPECT_EQ(warm.allocation_rounds, cold.allocation_rounds);
  EXPECT_EQ(warm.dual_iterations, cold.dual_iterations);
}

// ---------------------------------------------------------------------------
// Warm step == independent cell (max-min), at every thread count
// ---------------------------------------------------------------------------

TEST(Timeline, WarmStepIsByteIdenticalToIndependentCells) {
  const Fixture f = make_fixture(71);
  const auto schedule = make_schedule(f, 16);
  std::vector<timeline::EpochStats> reference;
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{0}}) {
    timeline::TimelineOptions options;
    options.epochs = 16;
    options.diurnal = make_diurnal(f);
    options.annual_growth = 0.3;
    options.factor_schedule = &schedule;
    options.policy.max_stretch = 2.2;
    options.threads = threads;
    timeline::TimelineDriver driver(f.plan, {}, f.base, f.direct_km(),
                                    options);
    for (std::size_t e = 0; e < options.epochs; ++e) {
      SCOPED_TRACE("threads " + std::to_string(threads) + " epoch " +
                   std::to_string(e));
      const timeline::EpochStats warm = driver.step();
      const timeline::EpochStats cold = driver.evaluate_cold(e);
      expect_epochs_equal(warm, cold);
      // ...and byte-identical across thread counts, churn fields included.
      if (threads == 1) {
        reference.push_back(warm);
      } else {
        expect_epochs_equal(warm, reference[e]);
        EXPECT_EQ(warm.link_deltas, reference[e].link_deltas);
        EXPECT_EQ(warm.touched_pairs, reference[e].touched_pairs);
        EXPECT_EQ(warm.changed_pairs, reference[e].changed_pairs);
      }
    }
    // The calm repeats in the schedule must actually exercise the warm
    // path: identical routes -> the incidence structure gets reused.
    EXPECT_GT(driver.summary().warm_reuses, 0u)
        << "threads " << threads;
  }
}

// ---------------------------------------------------------------------------
// Alpha-fair warm start: same answer within the convergence tolerance
// ---------------------------------------------------------------------------

TEST(Timeline, AlphaFairWarmMatchesColdWithinTolerance) {
  const Fixture f = make_fixture(37);
  const auto schedule = make_schedule(f, 12);
  timeline::TimelineOptions options;
  options.epochs = 12;
  options.diurnal = make_diurnal(f);
  options.annual_growth = 0.2;
  options.factor_schedule = &schedule;
  options.policy.max_stretch = 2.2;
  options.backend = TrafficBackend::Elastic;
  options.alpha = 1.0;
  timeline::TimelineDriver driver(f.plan, {}, f.base, f.direct_km(),
                                  options);
  for (std::size_t e = 0; e < options.epochs; ++e) {
    SCOPED_TRACE("epoch " + std::to_string(e));
    const timeline::EpochStats warm = driver.step();
    const timeline::EpochStats cold = driver.evaluate_cold(e);
    // Warm seeds the dual prices, so the iterate path differs; both sides
    // satisfy the same KKT residual and must land on the same allocation
    // up to that tolerance.
    EXPECT_EQ(warm.offered_bps, cold.offered_bps);
    EXPECT_NEAR(warm.delivered_bps, cold.delivered_bps,
                5e-3 * cold.offered_bps);
    EXPECT_NEAR(warm.served_fraction, cold.served_fraction, 5e-3);
    EXPECT_NEAR(warm.jain_fairness, cold.jain_fairness, 2e-2);
    EXPECT_EQ(warm.denied_fraction, cold.denied_fraction);
  }
  EXPECT_GT(driver.summary().warm_reuses, 0u);
}

// ---------------------------------------------------------------------------
// Timeline == independent scenario cells through the TrafficModel seam
// ---------------------------------------------------------------------------

/// The control_test 4-node square design (fiber mesh at 1.9x + one MW
/// diagonal), small enough that the seam comparison is exact.
design::DesignInput seam_input() {
  const double side = 500.0;
  const double diag = side * std::sqrt(2.0);
  std::vector<std::vector<double>> geod = {{0, side, diag, side},
                                           {side, 0, side, diag},
                                           {diag, side, 0, side},
                                           {side, diag, side, 0}};
  auto fiber = geod;
  for (auto& row : fiber) {
    for (double& v : row) v *= 1.9;
  }
  std::vector<std::vector<double>> traffic(4, std::vector<double>(4, 1.0));
  for (int i = 0; i < 4; ++i) traffic[i][i] = 0.0;
  std::vector<design::CandidateLink> cands = {{0, 2, diag * 1.05, 10.0}};
  return design::DesignInput(geod, fiber, traffic, cands, 10.0);
}

design::CapacityPlan seam_plan() {
  design::CapacityPlan plan;
  plan.aggregate_gbps = 5.0;
  design::LinkProvision prov;
  prov.candidate_index = 0;
  prov.site_a = 0;
  prov.site_b = 2;
  prov.series = 3;
  plan.links.push_back(prov);
  return plan;
}

TEST(Timeline, MatchesIndependentCellsThroughTheTrafficModelSeam) {
  const auto input = seam_input();
  const auto plan = seam_plan();
  std::vector<std::vector<double>> traffic(4, std::vector<double>(4, 1.0));
  for (int i = 0; i < 4; ++i) traffic[i][i] = 0.0;
  const auto base = flow::DemandMatrix::from_traffic(traffic, 1.0, 0.1);
  const LinkPlan link_plan = plan_links(input, plan, {});
  const flow::DirectKmFn direct = [&](std::uint32_t s, std::uint32_t t) {
    return input.geodesic_km(s, t);
  };

  // 48 hourly epochs cycling the MW diagonal through nominal / derated /
  // down states (fiber entries are present but inert).
  std::vector<std::size_t> mw;
  for (std::size_t i = 0; i < link_plan.links.size(); ++i) {
    if (link_plan.links[i].is_mw) mw.push_back(i);
  }
  ASSERT_FALSE(mw.empty());
  std::vector<std::vector<double>> schedule;
  for (std::size_t e = 0; e < 48; ++e) {
    std::vector<double> factors(link_plan.links.size(), 1.0);
    if (e % 6 == 2) factors[mw.front()] = 0.5;
    if (e % 6 == 4) factors[mw.front()] = 0.0;
    schedule.push_back(std::move(factors));
  }

  timeline::TimelineOptions options;
  options.epochs = 48;
  options.diurnal.tz_offset_hours = {0.0, 2.0, 5.0, 8.0};
  options.annual_growth = 0.25;
  options.factor_schedule = &schedule;
  timeline::TimelineDriver driver(link_plan, {}, base, direct, options);

  // The independent cell, scenario_diurnal-style: a fresh repairer walked
  // to the epoch's absolute link state, a fresh diurnal demand copy, and a
  // FluidTrafficModel run with route + derate overrides.
  const auto model = make_traffic_model(TrafficBackend::Flow, input, plan);
  for (std::size_t e = 0; e < options.epochs; ++e) {
    SCOPED_TRACE("epoch " + std::to_string(e));
    const timeline::EpochStats row = driver.step();

    control::RouteRepairer cell(link_plan, base.to_demands(),
                                options.policy, direct);
    (void)cell.apply(control::deltas_from_factors(link_plan, schedule[e],
                                                  cell.link_state()));
    const auto paths = cell.traffic_paths();
    const auto factors = cell.capacity_factors();

    const double hour = static_cast<double>(e);
    const double growth = 1.0 + options.annual_growth * (hour / 8760.0);
    flow::DemandMatrix demands =
        scenario::apply_diurnal(base, options.diurnal, hour);
    demands.scale_rates(growth);

    TrafficRunOptions run;
    run.plan = &link_plan;
    run.paths = &paths;
    run.capacity_factor = &factors;
    const TrafficReport cell_report = model->run(demands, run);

    EXPECT_EQ(row.offered_bps, cell_report.stats.offered_bps);
    EXPECT_EQ(row.delivered_bps, cell_report.stats.delivered_bps);
    EXPECT_EQ(row.mean_link_utilization,
              cell_report.stats.mean_link_utilization);
    EXPECT_EQ(row.max_link_utilization,
              cell_report.stats.max_link_utilization);
    EXPECT_EQ(row.allocation_rounds, cell_report.stats.allocation_rounds);
    ASSERT_EQ(driver.last_outcomes().size(), cell_report.pairs.size());
    for (std::size_t p = 0; p < cell_report.pairs.size(); ++p) {
      EXPECT_EQ(driver.last_outcomes()[p].delivered_bps,
                cell_report.pairs[p].delivered_bps);
      EXPECT_EQ(driver.last_outcomes()[p].latency_s,
                cell_report.pairs[p].latency_s);
      EXPECT_EQ(driver.last_outcomes()[p].stretch,
                cell_report.pairs[p].stretch);
    }
  }
}

// ---------------------------------------------------------------------------
// WarmState fingerprint: a path change must silently rebuild, never reuse
// ---------------------------------------------------------------------------

TEST(Timeline, WarmStateRebuildsOnPathChangeAndReusesOnRepeat) {
  const Fixture f = make_fixture(19);
  const TopologyView topo = view_from_plan(f.plan);
  control::RouteRepairer repairer(f.plan, f.base.to_demands(), {},
                                  f.direct_km());
  const auto paths_a = repairer.traffic_paths();
  (void)repairer.apply({{f.mw_links.front(), false}});
  const auto paths_b = repairer.traffic_paths();
  bool rerouted = false;
  ASSERT_EQ(paths_a.size(), paths_b.size());
  for (std::size_t p = 0; p < paths_a.size(); ++p) {
    if (paths_a[p].nodes != paths_b[p].nodes ||
        paths_a[p].edges != paths_b[p].edges) {
      rerouted = true;
      break;
    }
  }
  ASSERT_TRUE(rerouted) << "fixture must reroute on the MW down";

  std::vector<double> rates;
  for (const auto& pair : f.base.pairs()) rates.push_back(pair.rate_bps);

  flow::WarmState warm;
  flow::AllocatorOptions with_warm;
  with_warm.warm = &warm;
  (void)flow::max_min_allocate(topo.view, paths_a, rates, with_warm);
  EXPECT_EQ(warm.incidence_reuses, 0u);

  // Different paths, same WarmState handle: the fingerprint must force a
  // rebuild and give the cold answer — correctness never depends on the
  // caller invalidating the state.
  const auto cold = flow::max_min_allocate(topo.view, paths_b, rates, {});
  const auto stale = flow::max_min_allocate(topo.view, paths_b, rates,
                                            with_warm);
  EXPECT_EQ(warm.incidence_reuses, 0u);
  EXPECT_EQ(stale.rate_bps, cold.rate_bps);
  EXPECT_EQ(stale.edge_load_bps, cold.edge_load_bps);
  EXPECT_EQ(stale.rounds, cold.rounds);

  // Same paths again: now the structure is reused, same answer.
  const auto reused = flow::max_min_allocate(topo.view, paths_b, rates,
                                             with_warm);
  EXPECT_EQ(warm.incidence_reuses, 1u);
  EXPECT_EQ(reused.rate_bps, cold.rate_bps);
}

// ---------------------------------------------------------------------------
// SLO fold + option validation
// ---------------------------------------------------------------------------

TEST(Timeline, SloSummaryOrdersPercentilesAndCountsNines) {
  const Fixture f = make_fixture(53);
  const auto schedule = make_schedule(f, 24);
  timeline::TimelineOptions options;
  options.epochs = 24;
  options.diurnal = make_diurnal(f);
  options.factor_schedule = &schedule;
  options.policy.max_stretch = 2.0;
  timeline::TimelineDriver driver(f.plan, {}, f.base, f.direct_km(),
                                  options);
  const auto rows = driver.run();
  ASSERT_EQ(rows.size(), options.epochs);

  const auto availability = driver.pair_availability();
  ASSERT_EQ(availability.size(), f.base.flow_count());
  for (const double a : availability) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }

  const timeline::TimelineSummary summary = driver.summary();
  EXPECT_EQ(summary.epochs, options.epochs);
  EXPECT_EQ(summary.pairs, f.base.flow_count());
  EXPECT_LE(summary.three_nines_fraction, summary.two_nines_fraction);
  EXPECT_LE(summary.min_availability, summary.p01_availability);
  EXPECT_LE(summary.p01_availability, summary.p10_availability);
  EXPECT_LE(summary.p10_availability, summary.p50_availability);
  EXPECT_GT(summary.mean_served_fraction, 0.0);
  EXPECT_LE(summary.worst_served_fraction, summary.mean_served_fraction);
  // The schedule downs MW links in 6 of 24 epochs, so some pair must have
  // felt it and the three-nines set cannot be everyone.
  EXPECT_LT(summary.three_nines_fraction, 1.0);
}

TEST(Timeline, RejectsInvalidOptions) {
  const Fixture f = make_fixture(11);
  const auto schedule = make_schedule(f, 4);
  timeline::TimelineOptions good;
  good.diurnal = make_diurnal(f);
  good.factor_schedule = &schedule;

  {
    timeline::TimelineOptions bad = good;
    bad.backend = TrafficBackend::Packet;
    EXPECT_THROW(timeline::TimelineDriver(f.plan, {}, f.base, f.direct_km(),
                                          bad),
                 cisp::Error);
  }
  {
    timeline::TimelineOptions bad = good;
    bad.diurnal.floor_activity = 0.0;
    EXPECT_THROW(timeline::TimelineDriver(f.plan, {}, f.base, f.direct_km(),
                                          bad),
                 cisp::Error);
  }
  {
    // Schedule rows must cover every plan link.
    const std::vector<std::vector<double>> short_row = {{1.0}};
    timeline::TimelineOptions bad = good;
    bad.factor_schedule = &short_row;
    EXPECT_THROW(timeline::TimelineDriver(f.plan, {}, f.base, f.direct_km(),
                                          bad),
                 cisp::Error);
  }
  {
    // The diurnal profile must cover every demand site.
    timeline::TimelineOptions bad = good;
    bad.diurnal.tz_offset_hours.resize(2);
    EXPECT_THROW(timeline::TimelineDriver(f.plan, {}, f.base, f.direct_km(),
                                          bad),
                 cisp::Error);
  }
}

}  // namespace
}  // namespace cisp::net
