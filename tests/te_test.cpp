// Tests for the multipath TE stack: candidate gathering (net/te), the
// LP split optimizer, the subflow expansion seam through the fluid
// traffic model, happy-eyeballs candidate racing (net/control), and the
// timeline's multipath_te mode. The determinism contracts pinned here:
// candidate sets and split weights are byte-identical at every thread
// count, warm solves replay cold solves exactly, race() at any sharding
// equals the serial oracle, and a multipath_te timeline step is
// byte-identical to its independent-cell cold evaluation.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "design/capacity.hpp"
#include "geo/latlon.hpp"
#include "net/builder.hpp"
#include "net/control/candidate_racing.hpp"
#include "net/control/route_repair.hpp"
#include "net/flow/max_min.hpp"
#include "net/flow/multipath.hpp"
#include "net/te/candidates.hpp"
#include "net/te/split.hpp"
#include "net/timeline/timeline.hpp"
#include "net/traffic_model.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace cisp::net {
namespace {

void add_link(LinkPlan& plan, std::uint32_t a, std::uint32_t b, double gbps,
              double km, bool mw, double path_stretch = 1.0) {
  PlannedLink link;
  link.a = a;
  link.b = b;
  link.rate_bps = gbps * 1e9;
  link.latency_s = km * path_stretch / geo::kSpeedOfLightKmPerS;
  link.queue_packets = 100;
  link.is_mw = mw;
  plan.links.push_back(link);
}

// ---------------------------------------------------------------------------
// Parallel-branch fixture: 0 -> {1 | 2} -> 3, branch A (via 1) shorter
// than branch B (via 2), both 10 Gbps per hop. Exact split assertions
// live here.
// ---------------------------------------------------------------------------

struct ParallelFixture {
  LinkPlan plan;  // links: 0=0-1, 1=1-3, 2=0-2, 3=2-3
  std::vector<std::array<double, 2>> xy{
      {0.0, 0.0}, {500.0, 200.0}, {500.0, -300.0}, {1000.0, 0.0}};

  [[nodiscard]] flow::DirectKmFn direct_km() const {
    const auto coords = xy;
    return [coords](std::uint32_t s, std::uint32_t t) {
      return std::hypot(coords[s][0] - coords[t][0],
                        coords[s][1] - coords[t][1]);
    };
  }
};

ParallelFixture make_parallel() {
  ParallelFixture f;
  f.plan.node_count = 4;
  const auto km = [&](std::uint32_t a, std::uint32_t b) {
    return std::hypot(f.xy[a][0] - f.xy[b][0], f.xy[a][1] - f.xy[b][1]);
  };
  add_link(f.plan, 0, 1, 10.0, km(0, 1), false);
  add_link(f.plan, 1, 3, 10.0, km(1, 3), false);
  add_link(f.plan, 0, 2, 10.0, km(0, 2), false);
  add_link(f.plan, 2, 3, 10.0, km(2, 3), false);
  return f;
}

/// Zeroes the capacities of one plan link (both directed arcs).
void cut_link(SimTopologyView& view, std::size_t link) {
  for (std::size_t e = 0; e < view.capacity_bps.size(); ++e) {
    if (view.edge_to_link[e] / 2 == link) view.capacity_bps[e] = 0.0;
  }
}

// ---------------------------------------------------------------------------
// Planar fixture (timeline_test's shape): fiber chain + ring for
// connectivity, MW shortcuts for real path choices — the determinism and
// timeline tests run here.
// ---------------------------------------------------------------------------

struct Fixture {
  LinkPlan plan;
  std::vector<std::array<double, 2>> xy;
  flow::DemandMatrix base;
  std::vector<std::size_t> mw_links;

  [[nodiscard]] flow::DirectKmFn direct_km() const {
    const auto coords = xy;
    return [coords](std::uint32_t s, std::uint32_t t) {
      const double dx = coords[s][0] - coords[t][0];
      const double dy = coords[s][1] - coords[t][1];
      return std::sqrt(dx * dx + dy * dy);
    };
  }
};

Fixture make_fixture(std::uint64_t seed) {
  Fixture f;
  Rng rng(seed);
  const std::uint32_t n = 12;
  f.plan.node_count = n;
  for (std::uint32_t i = 0; i < n; ++i) {
    f.xy.push_back({rng.uniform(0.0, 2000.0), rng.uniform(0.0, 2000.0)});
  }
  const auto km = [&](std::uint32_t a, std::uint32_t b) {
    return std::hypot(f.xy[a][0] - f.xy[b][0], f.xy[a][1] - f.xy[b][1]);
  };
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    add_link(f.plan, i, i + 1, 400.0, km(i, i + 1), false, 1.8);
  }
  add_link(f.plan, 0, n - 1, 400.0, km(0, n - 1), false, 1.8);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto j =
        static_cast<std::uint32_t>((i + 2 + rng.uniform_index(4)) % n);
    if (j == i) continue;
    f.mw_links.push_back(f.plan.links.size());
    add_link(f.plan, i, j, rng.uniform(2.0, 20.0), km(i, j), true);
  }
  std::vector<flow::PairDemand> pairs;
  for (int d = 0; d < 24; ++d) {
    const auto s = static_cast<std::uint32_t>(rng.uniform_index(n));
    const auto t = static_cast<std::uint32_t>(rng.uniform_index(n));
    if (s == t) continue;
    pairs.push_back({s, t, 1 + rng.uniform_index(100),
                     rng.uniform(0.5e9, 3e9)});
  }
  f.base = flow::DemandMatrix::from_pairs(std::move(pairs));
  return f;
}

void expect_routes_equal(const MultipathRouteSet& a,
                         const MultipathRouteSet& b) {
  ASSERT_EQ(a.pair_paths.size(), b.pair_paths.size());
  for (std::size_t f = 0; f < a.pair_paths.size(); ++f) {
    SCOPED_TRACE("pair " + std::to_string(f));
    ASSERT_EQ(a.pair_paths[f].size(), b.pair_paths[f].size());
    for (std::size_t p = 0; p < a.pair_paths[f].size(); ++p) {
      EXPECT_EQ(a.pair_paths[f][p].path.nodes, b.pair_paths[f][p].path.nodes);
      EXPECT_EQ(a.pair_paths[f][p].path.edges, b.pair_paths[f][p].path.edges);
      EXPECT_EQ(a.pair_paths[f][p].weight, b.pair_paths[f][p].weight);
    }
  }
}

// ---------------------------------------------------------------------------
// Candidate gathering
// ---------------------------------------------------------------------------

TEST(TeCandidates, ShortestIsAlwaysFirstAndStretchBoundFiltersTheRest) {
  const ParallelFixture f = make_parallel();
  const TopologyView topo = view_from_plan(f.plan);
  const std::vector<TrafficDemand> demands = {{0, 3, 2e9}};

  te::CandidateOptions options;
  const te::CandidateSet open =
      te::generate_candidates(topo.view, demands, f.direct_km(), options);
  ASSERT_EQ(open.pairs.size(), 1u);
  ASSERT_GE(open.pairs[0].paths.size(), 2u);
  // Sorted by length: branch A (via node 1) strictly shorter.
  EXPECT_EQ(open.pairs[0].paths[0].nodes,
            (std::vector<graphs::NodeId>{0, 1, 3}));
  EXPECT_EQ(open.pairs[0].paths[1].nodes,
            (std::vector<graphs::NodeId>{0, 2, 3}));
  EXPECT_LT(open.pairs[0].stretch[0], open.pairs[0].stretch[1]);
  for (std::size_t p = 0; p + 1 < open.pairs[0].paths.size(); ++p) {
    EXPECT_LE(open.pairs[0].paths[p].length,
              open.pairs[0].paths[p + 1].length);
  }

  // A bound between the two branch stretches drops B but must keep the
  // shortest path (front exemption) — pairs never become unroutable here.
  options.max_stretch = 0.5 * (open.pairs[0].stretch[0] +
                               open.pairs[0].stretch[1]);
  const te::CandidateSet tight =
      te::generate_candidates(topo.view, demands, f.direct_km(), options);
  ASSERT_EQ(tight.pairs[0].paths.size(), 1u);
  EXPECT_EQ(tight.pairs[0].paths[0].nodes,
            (std::vector<graphs::NodeId>{0, 1, 3}));

  // An absurdly tight bound still keeps the front.
  options.max_stretch = 1e-6;
  const te::CandidateSet floor =
      te::generate_candidates(topo.view, demands, f.direct_km(), options);
  ASSERT_EQ(floor.pairs[0].paths.size(), 1u);

  // Options are part of the gather fingerprint.
  EXPECT_NE(open.key, tight.key);
}

TEST(TeCandidates, ByteIdenticalAcrossThreadCounts) {
  const Fixture f = make_fixture(101);
  const TopologyView topo = view_from_plan(f.plan);
  const std::vector<TrafficDemand> demands = f.base.to_demands();
  te::CandidateOptions options;
  options.max_stretch = 3.0;

  const te::CandidateSet reference = te::generate_candidates(
      topo.view, demands, f.direct_km(), options, /*threads=*/1);
  EXPECT_GT(reference.mcf_lambda, 0.0);
  for (const std::size_t threads :
       {std::size_t{2}, std::size_t{4}, std::size_t{0}}) {
    const te::CandidateSet set = te::generate_candidates(
        topo.view, demands, f.direct_km(), options, threads);
    ASSERT_EQ(set.pairs.size(), reference.pairs.size());
    EXPECT_EQ(set.key, reference.key);
    EXPECT_EQ(set.mcf_lambda, reference.mcf_lambda);
    for (std::size_t p = 0; p < set.pairs.size(); ++p) {
      SCOPED_TRACE("threads " + std::to_string(threads) + " pair " +
                   std::to_string(p));
      ASSERT_EQ(set.pairs[p].paths.size(), reference.pairs[p].paths.size());
      for (std::size_t c = 0; c < set.pairs[p].paths.size(); ++c) {
        EXPECT_EQ(set.pairs[p].paths[c].nodes,
                  reference.pairs[p].paths[c].nodes);
        EXPECT_EQ(set.pairs[p].paths[c].edges,
                  reference.pairs[p].paths[c].edges);
        EXPECT_EQ(set.pairs[p].stretch[c], reference.pairs[p].stretch[c]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Split optimizer
// ---------------------------------------------------------------------------

TEST(TeSplit, SpreadsOverloadEvenlyAcrossParallelBranches) {
  const ParallelFixture f = make_parallel();
  const TopologyView topo = view_from_plan(f.plan);
  // 16 Gbps against two 10 Gbps branches: a single path runs at 1.6x
  // utilization, the even split at 0.8x — the LP must find it.
  const std::vector<TrafficDemand> demands = {{0, 3, 16e9}};
  const te::SplitResult split =
      te::solve_splits(topo.view, demands, f.direct_km());
  EXPECT_FALSE(split.lp_fallback);
  EXPECT_EQ(split.lp_pairs, 1u);
  EXPECT_EQ(split.split_pairs, 1u);
  EXPECT_EQ(split.denied_pairs, 0u);
  ASSERT_EQ(split.routes.pair_paths.size(), 1u);
  ASSERT_EQ(split.routes.pair_paths[0].size(), 2u);
  EXPECT_NEAR(split.routes.pair_paths[0][0].weight, 0.5, 1e-9);
  EXPECT_NEAR(split.routes.pair_paths[0][1].weight, 0.5, 1e-9);
  EXPECT_NEAR(split.max_utilization, 0.8, 1e-9);
}

TEST(TeSplit, DegradedBranchShiftsWeightAndDeadPoolDenies) {
  const ParallelFixture f = make_parallel();
  const std::vector<TrafficDemand> demands = {{0, 3, 16e9}};

  // Branch B cut: all weight lands on the surviving branch A.
  TopologyView degraded = view_from_plan(f.plan);
  cut_link(degraded.view, 3);  // link 2-3
  const te::SplitResult onto_a =
      te::solve_splits(degraded.view, demands, f.direct_km());
  ASSERT_EQ(onto_a.routes.pair_paths[0].size(), 1u);
  EXPECT_EQ(onto_a.routes.pair_paths[0][0].path.nodes,
            (std::vector<graphs::NodeId>{0, 1, 3}));
  EXPECT_EQ(onto_a.routes.pair_paths[0][0].weight, 1.0);
  EXPECT_EQ(onto_a.split_pairs, 0u);
  EXPECT_NEAR(onto_a.max_utilization, 1.6, 1e-9);

  // Both branches cut: the pair's whole pool is dead -> denied (empty
  // route-set entry), never an exception.
  TopologyView dead = view_from_plan(f.plan);
  cut_link(dead.view, 1);  // link 1-3
  cut_link(dead.view, 3);  // link 2-3
  const te::SplitResult denied =
      te::solve_splits(dead.view, demands, f.direct_km());
  EXPECT_EQ(denied.denied_pairs, 1u);
  EXPECT_TRUE(denied.routes.pair_paths[0].empty());
}

TEST(TeSplit, WeightsByteIdenticalAcrossThreadCounts) {
  const Fixture f = make_fixture(103);
  const TopologyView topo = view_from_plan(f.plan);
  // Scale well past saturation: splitting only happens when the max-
  // utilized trunk has load worth moving.
  std::vector<TrafficDemand> demands = f.base.to_demands();
  for (auto& d : demands) d.rate_bps *= 50.0;
  te::SplitOptions options;
  // Loose bound: every pair keeps several candidates and enters the LP,
  // so the max-utilized trunk is actually movable (a tight bound pins
  // most pairs as background and fixes U at the background level).
  options.candidates.max_stretch = 10.0;

  options.threads = 1;
  const te::SplitResult reference =
      te::solve_splits(topo.view, demands, f.direct_km(), options);
  EXPECT_GT(reference.split_pairs, 0u);
  EXPECT_FALSE(reference.lp_fallback);
  for (const std::size_t threads :
       {std::size_t{2}, std::size_t{4}, std::size_t{0}}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    options.threads = threads;
    const te::SplitResult split =
        te::solve_splits(topo.view, demands, f.direct_km(), options);
    expect_routes_equal(split.routes, reference.routes);
    EXPECT_EQ(split.max_utilization, reference.max_utilization);
    EXPECT_EQ(split.mcf_lambda, reference.mcf_lambda);
  }
}

TEST(TeSplit, WarmSolveReplaysColdBytesAndReusesCaches) {
  const Fixture f = make_fixture(107);
  TopologyView topo = view_from_plan(f.plan);
  const std::vector<double> nominal = topo.view.capacity_bps;
  const std::vector<TrafficDemand> demands = f.base.to_demands();

  te::SplitWarmState warm;
  te::SplitOptions options;
  options.candidates.max_stretch = 3.0;
  options.gather_capacity_bps = &nominal;
  options.warm = &warm;

  const te::SplitResult first =
      te::solve_splits(topo.view, demands, f.direct_km(), options);
  EXPECT_FALSE(first.warm_candidates);
  EXPECT_FALSE(first.warm_solution);

  // Unchanged inputs: full solution replay.
  const te::SplitResult replay =
      te::solve_splits(topo.view, demands, f.direct_km(), options);
  EXPECT_TRUE(replay.warm_candidates);
  EXPECT_TRUE(replay.warm_solution);
  EXPECT_EQ(warm.solution_reuses, 1u);
  expect_routes_equal(replay.routes, first.routes);
  EXPECT_EQ(replay.max_utilization, first.max_utilization);

  // Degrade one MW link: the candidate pool (gathered vs nominal) is
  // reused, the solve re-runs — and matches a fully cold solve on the
  // same degraded view bitwise.
  cut_link(topo.view, f.mw_links.front());
  const te::SplitResult degraded_warm =
      te::solve_splits(topo.view, demands, f.direct_km(), options);
  EXPECT_TRUE(degraded_warm.warm_candidates);
  EXPECT_FALSE(degraded_warm.warm_solution);

  te::SplitOptions cold_options;
  cold_options.candidates.max_stretch = 3.0;
  cold_options.gather_capacity_bps = &nominal;
  const te::SplitResult degraded_cold =
      te::solve_splits(topo.view, demands, f.direct_km(), cold_options);
  expect_routes_equal(degraded_warm.routes, degraded_cold.routes);
  EXPECT_EQ(degraded_warm.max_utilization, degraded_cold.max_utilization);
}

// ---------------------------------------------------------------------------
// Subflow expansion + the TrafficModel seam
// ---------------------------------------------------------------------------

TEST(TeMultipath, ExpansionValidatesWeightsAndFoldsBack) {
  const ParallelFixture f = make_parallel();
  const TopologyView topo = view_from_plan(f.plan);
  const auto demands = flow::DemandMatrix::from_pairs({{0, 3, 10, 16e9}});
  const te::SplitResult split =
      te::solve_splits(topo.view, demands.to_demands(), f.direct_km());

  const flow::SubflowExpansion expansion =
      flow::expand_multipath(demands, split.routes);
  ASSERT_EQ(expansion.paths.size(), 2u);
  EXPECT_EQ(expansion.pair_count, 1u);
  EXPECT_NEAR(expansion.demand_bps[0] + expansion.demand_bps[1], 16e9, 1.0);
  // Elastic utility weights: users * split weight, so the pair's total
  // weight is its user count no matter how it splits.
  EXPECT_NEAR(expansion.weights[0] + expansion.weights[1], 10.0, 1e-9);

  flow::AllocatorOptions alloc_options;
  const flow::Allocation subflows = flow::max_min_allocate(
      topo.view, expansion.paths, expansion.demand_bps, alloc_options);
  const flow::Allocation folded = flow::fold_subflows(expansion, subflows);
  ASSERT_EQ(folded.rate_bps.size(), 1u);
  EXPECT_EQ(folded.rate_bps[0],
            subflows.rate_bps[0] + subflows.rate_bps[1]);

  // Weights that do not sum to 1 are an optimizer bug, not a request.
  MultipathRouteSet bad = split.routes;
  bad.pair_paths[0][0].weight = 0.25;
  bad.pair_paths[0][1].weight = 0.25;
  EXPECT_THROW(flow::expand_multipath(demands, bad), cisp::Error);
}

design::DesignInput seam_input(const ParallelFixture& f) {
  std::vector<std::vector<double>> geod(4, std::vector<double>(4, 0.0));
  for (std::uint32_t i = 0; i < 4; ++i) {
    for (std::uint32_t j = 0; j < 4; ++j) {
      geod[i][j] = std::hypot(f.xy[i][0] - f.xy[j][0],
                              f.xy[i][1] - f.xy[j][1]);
    }
  }
  auto fiber = geod;
  for (auto& row : fiber) {
    for (double& v : row) v *= 1.9;
  }
  std::vector<std::vector<double>> traffic(4, std::vector<double>(4, 1.0));
  for (int i = 0; i < 4; ++i) traffic[i][i] = 0.0;
  std::vector<design::CandidateLink> cands = {{0, 3, geod[0][3] * 1.05,
                                               10.0}};
  return design::DesignInput(geod, fiber, traffic, cands, 10.0);
}

design::CapacityPlan seam_plan() {
  design::CapacityPlan plan;
  plan.aggregate_gbps = 5.0;
  design::LinkProvision prov;
  prov.candidate_index = 0;
  prov.site_a = 0;
  prov.site_b = 3;
  prov.series = 3;
  plan.links.push_back(prov);
  return plan;
}

TEST(TeMultipath, RouteSetThroughTheFluidSeamMatchesManualExpansion) {
  const ParallelFixture f = make_parallel();
  const TopologyView topo = view_from_plan(f.plan);
  const auto demands = flow::DemandMatrix::from_pairs({{0, 3, 10, 16e9}});
  const te::SplitResult split =
      te::solve_splits(topo.view, demands.to_demands(), f.direct_km());
  ASSERT_EQ(split.routes.pair_paths[0].size(), 2u);

  const auto input = seam_input(f);
  const auto plan = seam_plan();
  const auto model = make_traffic_model(TrafficBackend::Flow, input, plan);
  TrafficRunOptions run;
  run.plan = &f.plan;
  run.route_set = &split.routes;
  const TrafficReport report = model->run(demands, run);

  // Both 8 Gbps subflows fit their 10 Gbps branches: everything delivers.
  EXPECT_EQ(report.stats.delivered_bps, 16e9);
  ASSERT_EQ(report.pairs.size(), 1u);
  EXPECT_EQ(report.pairs[0].delivered_bps, 16e9);

  // The seam must agree with doing the expansion by hand.
  const flow::SubflowExpansion expansion =
      flow::expand_multipath(demands, split.routes);
  flow::AllocatorOptions alloc_options;
  const flow::Allocation subflows = flow::max_min_allocate(
      topo.view, expansion.paths, expansion.demand_bps, alloc_options);
  const auto outcomes = flow::multipath_pair_outcomes(
      topo.view, expansion, demands, subflows, f.direct_km());
  EXPECT_EQ(report.pairs[0].latency_s, outcomes[0].latency_s);
  EXPECT_EQ(report.pairs[0].stretch, outcomes[0].stretch);

  // Denied pairs (empty entries) are counted but delivered zero.
  MultipathRouteSet denied;
  denied.pair_paths.resize(1);
  TrafficRunOptions denied_run;
  denied_run.plan = &f.plan;
  denied_run.route_set = &denied;
  const TrafficReport denied_report = model->run(demands, denied_run);
  EXPECT_EQ(denied_report.stats.offered_bps, 16e9);
  EXPECT_EQ(denied_report.stats.delivered_bps, 0.0);
}

TEST(TeMultipath, SeamRejectsPacketBackendAndPathsExclusivity) {
  const ParallelFixture f = make_parallel();
  const TopologyView topo = view_from_plan(f.plan);
  const auto demands = flow::DemandMatrix::from_pairs({{0, 3, 10, 2e9}});
  const te::SplitResult split =
      te::solve_splits(topo.view, demands.to_demands(), f.direct_km());

  const auto input = seam_input(f);
  const auto plan = seam_plan();

  // Multipath route sets are fluid-only.
  const auto packet = make_traffic_model(TrafficBackend::Packet, input, plan);
  TrafficRunOptions packet_run;
  packet_run.plan = &f.plan;
  packet_run.route_set = &split.routes;
  EXPECT_THROW(packet->run(demands, packet_run), cisp::Error);

  // paths and route_set are mutually exclusive overrides.
  const auto fluid = make_traffic_model(TrafficBackend::Flow, input, plan);
  const std::vector<graphs::Path> paths = {
      split.routes.pair_paths[0][0].path};
  TrafficRunOptions both;
  both.plan = &f.plan;
  both.route_set = &split.routes;
  both.paths = &paths;
  EXPECT_THROW(fluid->run(demands, both), cisp::Error);
}

// ---------------------------------------------------------------------------
// Candidate racing
// ---------------------------------------------------------------------------

TEST(TeRacing, WinnersFollowLinkStateAndDeniedPairsRecoverOnFiber) {
  // 0 -MW- 1 with a fiber detour 0-2-1: the canonical race.
  LinkPlan plan;
  plan.node_count = 3;
  std::vector<std::array<double, 2>> xy{{0.0, 0.0}, {1000.0, 0.0},
                                        {500.0, 400.0}};
  const auto km = [&](std::uint32_t a, std::uint32_t b) {
    return std::hypot(xy[a][0] - xy[b][0], xy[a][1] - xy[b][1]);
  };
  add_link(plan, 0, 1, 10.0, km(0, 1), true);         // link 0: MW
  add_link(plan, 0, 2, 400.0, km(0, 2), false, 1.8);  // link 1: fiber
  add_link(plan, 2, 1, 400.0, km(2, 1), false, 1.8);  // link 2: fiber
  const std::vector<TrafficDemand> demands = {{0, 1, 1e9}, {0, 1, 1e9},
                                              {0, 1, 1e9}};
  const control::CandidateRacer racer(plan, demands, {});

  // The MW route all three pairs would use, pinned on the racer's view.
  graphs::Path mw_path;
  mw_path.nodes = {0, 1};
  for (const graphs::EdgeId eid : racer.view().latency_graph.out_edges(0)) {
    const auto& edge = racer.view().latency_graph.edge(eid);
    if (edge.to == 1 && racer.view().edge_to_link[eid] / 2 == 0) {
      mw_path.edges = {eid};
      mw_path.length = edge.weight;
    }
  }
  ASSERT_EQ(mw_path.edges.size(), 1u);

  std::vector<control::PairRoute> routes(3);
  routes[0].path = mw_path;  // healthy MW
  routes[0].latency_s = mw_path.length;
  routes[1].path = mw_path;  // same route, but the link will be DOWN
  routes[1].latency_s = mw_path.length;
  routes[2].denied = true;   // stretch-bound denial: races fiber alone

  std::vector<control::LinkState> healthy(plan.links.size());
  const control::RacingReport all_up = racer.race_serial(routes, healthy);
  EXPECT_EQ(all_up.outcomes[0].winner, control::RaceWinner::Microwave);
  EXPECT_EQ(all_up.outcomes[0].mw_attempts, 1u);
  EXPECT_EQ(all_up.outcomes[0].decision_s, 2.0 * mw_path.length);
  // The denied pair recovers on the fiber detour.
  EXPECT_EQ(all_up.outcomes[2].winner, control::RaceWinner::Fiber);
  EXPECT_EQ(all_up.outcomes[2].path.nodes,
            (std::vector<graphs::NodeId>{0, 2, 1}));
  EXPECT_EQ(all_up.recovered_pairs, 1u);

  std::vector<control::LinkState> mw_down(plan.links.size());
  mw_down[0] = {false, 1.0};
  const control::RacingReport down = racer.race_serial(routes, mw_down);
  // Every MW handshake fails; fiber's staggered attempt wins.
  EXPECT_EQ(down.outcomes[0].winner, control::RaceWinner::Fiber);
  EXPECT_EQ(down.outcomes[0].mw_attempts, control::RacingOptions{}.max_attempts);
  EXPECT_EQ(down.outcomes[1].winner, control::RaceWinner::Fiber);
  EXPECT_EQ(down.fiber_winners, 3u);
}

TEST(TeRacing, ShardedRaceIsByteIdenticalToTheSerialOracle) {
  const Fixture f = make_fixture(109);
  const std::vector<TrafficDemand> demands = f.base.to_demands();
  control::RouteRepairer repairer(f.plan, demands, {}, f.direct_km());
  // Degrade a few MW links so the attempt loops actually draw.
  std::vector<control::LinkDelta> deltas;
  deltas.push_back({f.mw_links[0], false, 1.0});
  deltas.push_back({f.mw_links[1], true, 0.4});
  deltas.push_back({f.mw_links[2], true, 0.7});
  repairer.apply(deltas);

  control::RacingOptions options;
  options.seed = 77;
  const control::CandidateRacer serial_racer(f.plan, demands, options);
  const control::RacingReport oracle =
      serial_racer.race_serial(repairer.routes(), repairer.link_state());
  EXPECT_GT(oracle.mw_winners + oracle.fiber_winners, 0u);

  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{0}}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    options.threads = threads;
    const control::CandidateRacer racer(f.plan, demands, options);
    const control::RacingReport report =
        racer.race(repairer.routes(), repairer.link_state());
    ASSERT_EQ(report.outcomes.size(), oracle.outcomes.size());
    for (std::size_t p = 0; p < report.outcomes.size(); ++p) {
      EXPECT_EQ(report.outcomes[p].winner, oracle.outcomes[p].winner);
      EXPECT_EQ(report.outcomes[p].path.nodes, oracle.outcomes[p].path.nodes);
      EXPECT_EQ(report.outcomes[p].decision_s, oracle.outcomes[p].decision_s);
      EXPECT_EQ(report.outcomes[p].mw_attempts, oracle.outcomes[p].mw_attempts);
    }
    EXPECT_EQ(report.mw_winners, oracle.mw_winners);
    EXPECT_EQ(report.fiber_winners, oracle.fiber_winners);
    EXPECT_EQ(report.recovered_pairs, oracle.recovered_pairs);
  }
}

// ---------------------------------------------------------------------------
// Timeline multipath_te mode
// ---------------------------------------------------------------------------

std::vector<std::vector<double>> make_schedule(const Fixture& f,
                                               std::size_t epochs) {
  std::vector<std::vector<double>> schedule;
  for (std::size_t e = 0; e < epochs; ++e) {
    std::vector<double> factors(f.plan.links.size(), 1.0);
    if (e % 4 == 1) {
      factors[f.mw_links[e % f.mw_links.size()]] = 0.0;
    } else if (e % 4 == 2) {
      factors[f.mw_links[(e + 3) % f.mw_links.size()]] = 0.45;
    }
    schedule.push_back(std::move(factors));
  }
  return schedule;
}

TEST(TimelineTe, MultipathStepIsByteIdenticalToColdCellsAtEveryThreadCount) {
  const Fixture f = make_fixture(113);
  const auto schedule = make_schedule(f, 12);
  std::vector<timeline::EpochStats> reference;
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{0}}) {
    timeline::TimelineOptions options;
    options.epochs = 12;
    options.diurnal.tz_offset_hours.clear();
    for (const auto& p : f.xy) {
      options.diurnal.tz_offset_hours.push_back(p[0] / 200.0);
    }
    options.annual_growth = 0.3;
    options.factor_schedule = &schedule;
    options.multipath_te = true;
    options.te_split.candidates.max_stretch = 3.0;
    options.threads = threads;
    timeline::TimelineDriver driver(f.plan, {}, f.base, f.direct_km(),
                                    options);
    for (std::size_t e = 0; e < options.epochs; ++e) {
      SCOPED_TRACE("threads " + std::to_string(threads) + " epoch " +
                   std::to_string(e));
      const timeline::EpochStats warm = driver.step();
      const timeline::EpochStats cold = driver.evaluate_cold(e);
      EXPECT_EQ(warm.offered_bps, cold.offered_bps);
      EXPECT_EQ(warm.delivered_bps, cold.delivered_bps);
      EXPECT_EQ(warm.served_fraction, cold.served_fraction);
      EXPECT_EQ(warm.p99_stretch, cold.p99_stretch);
      EXPECT_EQ(warm.jain_fairness, cold.jain_fairness);
      EXPECT_EQ(warm.denied_fraction, cold.denied_fraction);
      EXPECT_EQ(warm.available_fraction, cold.available_fraction);
      EXPECT_EQ(warm.mean_link_utilization, cold.mean_link_utilization);
      EXPECT_EQ(warm.max_link_utilization, cold.max_link_utilization);
      EXPECT_EQ(warm.allocation_rounds, cold.allocation_rounds);
      if (threads == 1) {
        reference.push_back(warm);
      } else {
        EXPECT_EQ(warm.delivered_bps, reference[e].delivered_bps);
        EXPECT_EQ(warm.p99_stretch, reference[e].p99_stretch);
        EXPECT_EQ(warm.max_link_utilization,
                  reference[e].max_link_utilization);
      }
    }
    // The gather ran once: every later epoch reused the candidate pool,
    // and the calm repeats replayed whole solutions.
    EXPECT_GT(driver.te_warm().candidate_reuses, 0u);
    EXPECT_GT(driver.te_warm().solution_reuses, 0u);
  }
}

}  // namespace
}  // namespace cisp::net
