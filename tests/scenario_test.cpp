// Tests for the demand-scenario generators and failure models: regional
// skew (total preservation, proportional reshaping), diurnal phase
// (timezone offsets, activity bounds, peak alignment), traffic-mix blends
// (the design::mixed_problem convention), LinkPlan failure application
// (deterministic cuts, seeded draws), and the scenario -> traffic-model
// seam end to end (a cut MW link raises stretch on both fluid backends).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "net/builder.hpp"
#include "net/scenario/demand_scenario.hpp"
#include "net/scenario/failure_model.hpp"
#include "net/traffic_model.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace cisp::net {
namespace {

flow::DemandMatrix square_matrix() {
  std::vector<std::vector<double>> traffic(4, std::vector<double>(4, 1.0));
  for (int i = 0; i < 4; ++i) traffic[i][i] = 0.0;
  return flow::DemandMatrix::from_traffic(traffic, 10.0, 1.0);
}

// ---------------------------------------------------------------------------
// Regional skew
// ---------------------------------------------------------------------------

TEST(RegionalSkew, PreservesTotalAndReshapes) {
  const auto base = square_matrix();
  scenario::RegionalSkew skew;
  skew.site_weight = {2.0, 1.0, 1.0, 1.0};
  const auto skewed = scenario::apply_regional_skew(base, skew);
  EXPECT_NEAR(skewed.total_rate_bps(), base.total_rate_bps(), 1.0);
  EXPECT_EQ(skewed.flow_count(), base.flow_count());
  EXPECT_EQ(skewed.total_users(), base.total_users());
  // Pairs touching site 0 gained share; pairs avoiding it lost share.
  for (std::size_t f = 0; f < base.pairs().size(); ++f) {
    const auto& was = base.pairs()[f];
    const auto& now = skewed.pairs()[f];
    ASSERT_EQ(was.src, now.src);
    ASSERT_EQ(was.dst, now.dst);
    if (was.src == 0 || was.dst == 0) {
      EXPECT_GT(now.rate_bps, was.rate_bps);
    } else {
      EXPECT_LT(now.rate_bps, was.rate_bps);
    }
  }
}

TEST(RegionalSkew, ZeroWeightSilencesAMetroAndRawScalesWithoutRenorm) {
  const auto base = square_matrix();
  scenario::RegionalSkew skew;
  skew.site_weight = {0.0, 1.0, 1.0, 1.0};
  skew.preserve_total = false;
  const auto skewed = scenario::apply_regional_skew(base, skew);
  // 6 of the 12 ordered pairs touch site 0 and are dropped.
  EXPECT_EQ(skewed.flow_count(), 6u);
  for (const auto& pair : skewed.pairs()) {
    EXPECT_NE(pair.src, 0u);
    EXPECT_NE(pair.dst, 0u);
  }
  // Without renormalization the surviving pairs keep their base rates.
  EXPECT_NEAR(skewed.total_rate_bps(), base.total_rate_bps() / 2.0, 1.0);
}

TEST(RegionalSkew, PopulationWeightsFollowGamma) {
  const std::vector<std::uint64_t> pops = {8000000, 4000000, 1000000};
  const auto uniform = scenario::population_skew_weights(pops, 0.0);
  for (const double w : uniform) EXPECT_DOUBLE_EQ(w, 1.0);
  const auto skewed = scenario::population_skew_weights(pops, 1.0);
  EXPECT_GT(skewed[0], skewed[1]);
  EXPECT_GT(skewed[1], skewed[2]);
  const auto inverted = scenario::population_skew_weights(pops, -1.0);
  EXPECT_LT(inverted[0], inverted[1]);
}

// ---------------------------------------------------------------------------
// Diurnal phase
// ---------------------------------------------------------------------------

TEST(Diurnal, TimezoneOffsetsComeFromLongitude) {
  const std::vector<geo::LatLon> sites = {
      {40.7, -75.0}, {34.0, -120.0}, {50.0, 15.0}};
  const auto offsets = scenario::timezone_offsets(sites);
  EXPECT_DOUBLE_EQ(offsets[0], -5.0);
  EXPECT_DOUBLE_EQ(offsets[1], -8.0);
  EXPECT_DOUBLE_EQ(offsets[2], 1.0);
}

TEST(Diurnal, ActivityPeaksAtLocalPeakHourAndStaysBounded) {
  scenario::DiurnalProfile profile;
  profile.tz_offset_hours = {-5.0, -8.0};
  profile.peak_local_hour = 20.0;
  profile.amplitude = 0.6;
  // Peak: local 20:00 = UTC 01:00 for the east site, UTC 04:00 west.
  EXPECT_NEAR(scenario::diurnal_activity(profile, 0, 1.0), 1.6, 1e-12);
  EXPECT_NEAR(scenario::diurnal_activity(profile, 1, 4.0), 1.6, 1e-12);
  // Trough 12 hours later.
  EXPECT_NEAR(scenario::diurnal_activity(profile, 0, 13.0), 0.4, 1e-12);
  // The same UTC instant hits the two coasts at different phases.
  EXPECT_GT(scenario::diurnal_activity(profile, 0, 1.0),
            scenario::diurnal_activity(profile, 1, 1.0));
  // The floor clamps an over-amplified trough.
  profile.amplitude = 1.5;
  profile.floor_activity = 0.1;
  EXPECT_DOUBLE_EQ(scenario::diurnal_activity(profile, 0, 13.0), 0.1);
}

TEST(Diurnal, AppliedMatrixScalesWithinActivityBounds) {
  const auto base = square_matrix();
  scenario::DiurnalProfile profile;
  profile.tz_offset_hours = {-5.0, -6.0, -7.0, -8.0};
  const auto at_peak = scenario::apply_diurnal(base, profile, 1.5);
  ASSERT_EQ(at_peak.flow_count(), base.flow_count());
  for (std::size_t f = 0; f < base.pairs().size(); ++f) {
    const double factor =
        at_peak.pairs()[f].rate_bps / base.pairs()[f].rate_bps;
    EXPECT_GE(factor, profile.floor_activity - 1e-12);
    EXPECT_LE(factor, 1.0 + profile.amplitude + 1e-12);
    EXPECT_EQ(at_peak.pairs()[f].users, base.pairs()[f].users);
  }
  // Around the continental peak the total offer exceeds the mean; at the
  // opposite phase it falls below.
  EXPECT_GT(at_peak.total_rate_bps(), base.total_rate_bps());
  const auto at_trough = scenario::apply_diurnal(base, profile, 13.5);
  EXPECT_LT(at_trough.total_rate_bps(), base.total_rate_bps());
}

TEST(Diurnal, WrapsHoursFromTheFullRealLine) {
  EXPECT_DOUBLE_EQ(scenario::wrap_utc_hour(0.0), 0.0);
  EXPECT_DOUBLE_EQ(scenario::wrap_utc_hour(23.75), 23.75);
  EXPECT_DOUBLE_EQ(scenario::wrap_utc_hour(24.0), 0.0);
  EXPECT_DOUBLE_EQ(scenario::wrap_utc_hour(25.0), 1.0);
  EXPECT_DOUBLE_EQ(scenario::wrap_utc_hour(48.25), 0.25);
  EXPECT_DOUBLE_EQ(scenario::wrap_utc_hour(-1.0), 23.0);
  EXPECT_DOUBLE_EQ(scenario::wrap_utc_hour(-23.5), 0.5);
  EXPECT_THROW((void)scenario::wrap_utc_hour(
                   std::numeric_limits<double>::infinity()),
               cisp::Error);
}

TEST(Diurnal, ActivityIsPeriodicAcrossDayBoundaries) {
  scenario::DiurnalProfile profile;
  profile.tz_offset_hours = {-5.0, -8.0, 1.0};
  // Streaming timelines feed monotonically increasing hours: epoch 25 is
  // day 2, 01:00, and must see exactly the day-1 activity. Pinned as
  // byte-identity (fmod is exact for these inputs), not approximate
  // equality — the pre-fix code fed the raw hour into cos(), whose
  // argument reduction drifts day over day.
  for (const std::size_t site : {std::size_t{0}, std::size_t{1},
                                 std::size_t{2}}) {
    for (const double hour : {0.0, 1.0, 4.5, 13.0, 19.75, 23.5}) {
      EXPECT_EQ(scenario::diurnal_activity(profile, site, hour),
                scenario::diurnal_activity(profile, site, hour + 24.0))
          << "site " << site << " hour " << hour;
      EXPECT_EQ(scenario::diurnal_activity(profile, site, hour),
                scenario::diurnal_activity(profile, site, hour + 8760.0))
          << "site " << site << " hour " << hour;
      EXPECT_EQ(scenario::diurnal_activity(profile, site, hour),
                scenario::diurnal_activity(profile, site, hour - 24.0))
          << "site " << site << " hour " << hour;
    }
  }
}

TEST(Diurnal, InPlaceRewriteIsByteIdenticalToApplyDiurnal) {
  const auto base = square_matrix();
  scenario::DiurnalProfile profile;
  profile.tz_offset_hours = {-5.0, -6.0, -7.0, -8.0};
  for (const double hour : {1.5, 13.5, 30.0}) {
    const auto cell = scenario::apply_diurnal(base, profile, hour);
    flow::DemandMatrix streamed = base;
    scenario::apply_diurnal_in_place(base, profile, hour, 1.0, streamed);
    ASSERT_EQ(streamed.flow_count(), cell.flow_count());
    for (std::size_t f = 0; f < cell.pairs().size(); ++f) {
      EXPECT_EQ(streamed.pairs()[f].rate_bps, cell.pairs()[f].rate_bps);
      EXPECT_EQ(streamed.pairs()[f].users, cell.pairs()[f].users);
    }
    EXPECT_EQ(streamed.total_rate_bps(), cell.total_rate_bps());

    // With a growth scale the streamed path must equal the independent
    // cell's copy-then-scale, in the same multiplication order.
    auto scaled_cell = cell;
    scaled_cell.scale_rates(1.25);
    scenario::apply_diurnal_in_place(base, profile, hour, 1.25, streamed);
    for (std::size_t f = 0; f < scaled_cell.pairs().size(); ++f) {
      EXPECT_EQ(streamed.pairs()[f].rate_bps,
                scaled_cell.pairs()[f].rate_bps);
    }
  }
  // Mismatched pair sequences are rejected, not silently misapplied.
  flow::DemandMatrix wrong = flow::DemandMatrix::from_pairs({{0, 1, 1, 1e9}});
  EXPECT_THROW(
      scenario::apply_diurnal_in_place(base, profile, 1.5, 1.0, wrong),
      cisp::Error);
}

TEST(Diurnal, DemandMatrixInPlaceUpdatesKeepStructure) {
  auto matrix = square_matrix();
  const auto base = matrix;
  matrix.scale_rates(0.5);
  EXPECT_EQ(matrix.flow_count(), base.flow_count());
  EXPECT_EQ(matrix.total_users(), base.total_users());
  EXPECT_DOUBLE_EQ(matrix.total_rate_bps(), base.total_rate_bps() * 0.5);
  // Zero is a legal in-place rate (the pair stays, unlike from_pairs which
  // drops zero-rate pairs at construction).
  matrix.scale_rates(0.0);
  EXPECT_EQ(matrix.flow_count(), base.flow_count());
  EXPECT_DOUBLE_EQ(matrix.total_rate_bps(), 0.0);
  // Negative and non-finite rates are rejected.
  EXPECT_THROW(matrix.scale_rates(-1.0), cisp::Error);
  EXPECT_THROW(matrix.update_rates([](std::size_t, const flow::PairDemand&) {
    return -5.0;
  }),
               cisp::Error);
}

// ---------------------------------------------------------------------------
// Traffic-mix blends
// ---------------------------------------------------------------------------

TEST(Blend, FollowsTheMixedProblemConvention) {
  // Two 2x2 classes with distinct shapes: blending 3:1 gives each class
  // its aggregate share (after per-class sum normalization), then the
  // largest entry is scaled to 1.
  const std::vector<std::vector<double>> a = {{0.0, 2.0}, {0.0, 0.0}};
  const std::vector<std::vector<double>> b = {{0.0, 0.0}, {4.0, 0.0}};
  const auto blended = scenario::blend_traffic({a, b}, {3.0, 1.0});
  // Class shares 3/4 and 1/4 -> entries 0.75 and 0.25 before max-norm.
  EXPECT_DOUBLE_EQ(blended[0][1], 1.0);
  EXPECT_NEAR(blended[1][0], 0.25 / 0.75, 1e-12);
}

TEST(Blend, RejectsBadShapesAndAllZero) {
  const std::vector<std::vector<double>> a = {{0.0, 1.0}, {1.0, 0.0}};
  const std::vector<std::vector<double>> ragged = {{0.0, 1.0}};
  EXPECT_THROW((void)scenario::blend_traffic({a, ragged}, {1.0, 1.0}),
               cisp::Error);
  EXPECT_THROW((void)scenario::blend_traffic({a}, {1.0, 2.0}), cisp::Error);
  EXPECT_THROW((void)scenario::blend_traffic({a}, {0.0}), cisp::Error);
}

// ---------------------------------------------------------------------------
// Failure models
// ---------------------------------------------------------------------------

LinkPlan toy_plan() {
  LinkPlan plan;
  plan.node_count = 4;
  // Three MW links with distinct capacities + two fiber links.
  plan.links.push_back({0, 1, 3e9, 0.001, 100, true});
  plan.links.push_back({1, 2, 9e9, 0.001, 100, true});
  plan.links.push_back({2, 3, 6e9, 0.001, 100, true});
  plan.links.push_back({0, 2, 400e9, 0.002, 1000, false});
  plan.links.push_back({1, 3, 400e9, 0.002, 1000, false});
  return plan;
}

TEST(FailureModel, NoneIsIdentity) {
  const auto plan = toy_plan();
  const auto outcome = scenario::apply_failures(plan, {});
  EXPECT_TRUE(outcome.failed_links.empty());
  EXPECT_EQ(outcome.plan.links.size(), plan.links.size());
}

TEST(FailureModel, CutLargestKDropsTheBiggestTrunksOnly) {
  const auto plan = toy_plan();
  scenario::FailureModel model;
  model.kind = scenario::FailureModel::Kind::CutLargestK;
  model.k = 2;
  const auto outcome = scenario::apply_failures(plan, model);
  // Links 1 (9 Gbps) and 2 (6 Gbps) fail; fiber and the 3 Gbps MW stay.
  EXPECT_EQ(outcome.failed_links, (std::vector<std::size_t>{1, 2}));
  ASSERT_EQ(outcome.plan.links.size(), 3u);
  EXPECT_TRUE(outcome.plan.links[0].is_mw);
  EXPECT_DOUBLE_EQ(outcome.plan.links[0].rate_bps, 3e9);
  EXPECT_FALSE(outcome.plan.links[1].is_mw);
  EXPECT_FALSE(outcome.plan.links[2].is_mw);
  // k beyond the MW count clamps: fiber NEVER fails.
  model.k = 99;
  const auto all_mw = scenario::apply_failures(plan, model);
  EXPECT_EQ(all_mw.failed_links.size(), 3u);
  EXPECT_EQ(all_mw.plan.links.size(), 2u);
}

TEST(FailureModel, RandomDrawsAreSeededAndMwOnly) {
  const auto plan = toy_plan();
  scenario::FailureModel model;
  model.kind = scenario::FailureModel::Kind::RandomDown;
  model.down_probability = 0.5;
  model.seed = 7;
  const auto a = scenario::apply_failures(plan, model);
  const auto b = scenario::apply_failures(plan, model);
  EXPECT_EQ(a.failed_links, b.failed_links);  // same seed, same draw
  for (const std::size_t idx : a.failed_links) {
    EXPECT_TRUE(plan.links[idx].is_mw);
  }
  model.down_probability = 1.0;
  const auto all = scenario::apply_failures(plan, model);
  EXPECT_EQ(all.failed_links.size(), 3u);
  model.down_probability = 0.0;
  const auto none = scenario::apply_failures(plan, model);
  EXPECT_TRUE(none.failed_links.empty());
}

TEST(FailureModel, RandomDrawConsumptionContractIsPinned) {
  // The header's determinism contract, pinned by an in-test reference
  // reimplementation: one Bernoulli draw per MW link in plan order from a
  // single Rng(seed); fiber consumes NO draws. Rng is xoshiro256** on
  // integers, so this holds across platforms and thread counts.
  const auto plan = toy_plan();
  scenario::FailureModel model;
  model.kind = scenario::FailureModel::Kind::RandomDown;
  model.down_probability = 0.4;
  model.seed = 123;
  const auto outcome = scenario::apply_failures(plan, model);
  Rng rng(123);
  std::vector<std::size_t> expected;
  for (std::size_t i = 0; i < plan.links.size(); ++i) {
    if (!plan.links[i].is_mw) continue;
    if (rng.chance(0.4)) expected.push_back(i);
  }
  EXPECT_EQ(outcome.failed_links, expected);
}

TEST(FailureModel, PerLinkProbabilitiesOverrideTheScalar) {
  const auto plan = toy_plan();
  scenario::FailureModel model;
  model.kind = scenario::FailureModel::Kind::RandomDown;
  model.seed = 55;

  // All-zero: nothing fails, whatever the scalar says.
  model.down_probability = 1.0;
  model.per_link_down_probability.assign(plan.links.size(), 0.0);
  EXPECT_TRUE(scenario::apply_failures(plan, model).failed_links.empty());

  // Certain failure on MW link 1 only; a 1.0 on FIBER entries is ignored
  // (the MW-only invariant) and consumes no draw.
  model.per_link_down_probability = {0.0, 1.0, 0.0, 1.0, 1.0};
  const auto one = scenario::apply_failures(plan, model);
  EXPECT_EQ(one.failed_links, (std::vector<std::size_t>{1}));

  // A uniform per-link vector must reproduce the scalar draw exactly —
  // identical consumption order is part of the contract.
  model.down_probability = 0.5;
  model.per_link_down_probability.clear();
  const auto scalar = scenario::apply_failures(plan, model);
  model.per_link_down_probability.assign(plan.links.size(), 0.5);
  const auto vectored = scenario::apply_failures(plan, model);
  EXPECT_EQ(scalar.failed_links, vectored.failed_links);

  // Size mismatches and out-of-range probabilities throw.
  model.per_link_down_probability = {0.5, 0.5};
  EXPECT_THROW((void)scenario::apply_failures(plan, model), cisp::Error);
  model.per_link_down_probability.assign(plan.links.size(), 1.5);
  EXPECT_THROW((void)scenario::apply_failures(plan, model), cisp::Error);
}

TEST(FailureModel, ParsesKinds) {
  EXPECT_EQ(scenario::parse_failure_kind("none"),
            scenario::FailureModel::Kind::None);
  EXPECT_EQ(scenario::parse_failure_kind("cut"),
            scenario::FailureModel::Kind::CutLargestK);
  EXPECT_EQ(scenario::parse_failure_kind("rand"),
            scenario::FailureModel::Kind::RandomDown);
  EXPECT_THROW((void)scenario::parse_failure_kind("meteor"), cisp::Error);
}

// ---------------------------------------------------------------------------
// Scenario -> traffic-model seam, end to end
// ---------------------------------------------------------------------------

/// The flow_test 4-node square with one MW diagonal.
design::DesignInput square_input() {
  const double side = 500.0;
  const double diag = side * std::sqrt(2.0);
  std::vector<std::vector<double>> geod = {
      {0, side, diag, side},
      {side, 0, side, diag},
      {diag, side, 0, side},
      {side, diag, side, 0}};
  auto fiber = geod;
  for (auto& row : fiber) {
    for (double& v : row) v *= 1.9;
  }
  std::vector<std::vector<double>> traffic(4, std::vector<double>(4, 1.0));
  for (int i = 0; i < 4; ++i) traffic[i][i] = 0.0;
  std::vector<design::CandidateLink> cands = {{0, 2, diag * 1.05, 10.0}};
  return design::DesignInput(geod, fiber, traffic, cands, 10.0);
}

design::CapacityPlan square_plan() {
  design::CapacityPlan plan;
  plan.aggregate_gbps = 5.0;
  design::LinkProvision prov;
  prov.candidate_index = 0;
  prov.site_a = 0;
  prov.site_b = 2;
  prov.series = 3;
  plan.links.push_back(prov);
  return plan;
}

TEST(ScenarioSeam, CuttingTheMwDiagonalRaisesStretchOnFluidBackends) {
  const auto input = square_input();
  const auto plan = square_plan();
  std::vector<std::vector<double>> traffic(4, std::vector<double>(4, 1.0));
  for (int i = 0; i < 4; ++i) traffic[i][i] = 0.0;
  const auto demands = flow::DemandMatrix::from_traffic(traffic, 1.0, 0.1);

  const LinkPlan base_plan = plan_links(input, plan, {});
  scenario::FailureModel model;
  model.kind = scenario::FailureModel::Kind::CutLargestK;
  model.k = 1;
  const auto outcome = scenario::apply_failures(base_plan, model);
  ASSERT_EQ(outcome.failed_links.size(), 1u);

  for (const auto backend :
       {TrafficBackend::Flow, TrafficBackend::Elastic}) {
    const auto model_ptr = make_traffic_model(backend, input, plan);
    TrafficRunOptions options;
    const auto intact = model_ptr->run(demands, options);
    options.plan = &outcome.plan;
    const auto degraded = model_ptr->run(demands, options);
    // The 0<->2 pairs lose the straight MW shot and detour over fiber.
    EXPECT_GT(degraded.stats.mean_stretch, intact.stats.mean_stretch)
        << to_string(backend);
    // Fiber-only pairs already sit at the fiber stretch (1.9): cutting the
    // diagonal can only raise the max, never lower it.
    EXPECT_GE(degraded.stats.max_stretch, intact.stats.max_stretch);
    // Nothing is lost below saturation: fiber absorbs the demand.
    EXPECT_NEAR(degraded.stats.delivered_bps, degraded.stats.offered_bps,
                1.0);
  }
}

TEST(ScenarioSeam, ElasticBackendServesUncongestedDemandLikeFlow) {
  const auto input = square_input();
  const auto plan = square_plan();
  std::vector<std::vector<double>> traffic(4, std::vector<double>(4, 1.0));
  for (int i = 0; i < 4; ++i) traffic[i][i] = 0.0;
  const auto demands = flow::DemandMatrix::from_users(traffic, 100000, 3000.0);

  TrafficRunOptions options;
  const auto flow_report =
      make_traffic_model(TrafficBackend::Flow, input, plan)
          ->run(demands, options);
  const auto elastic_report =
      make_traffic_model(TrafficBackend::Elastic, input, plan)
          ->run(demands, options);
  EXPECT_EQ(elastic_report.stats.backend, TrafficBackend::Elastic);
  EXPECT_EQ(elastic_report.stats.users, 100000u);
  // Same routes, both uncongested: identical latency and full delivery.
  EXPECT_NEAR(elastic_report.stats.mean_delay_s,
              flow_report.stats.mean_delay_s, 1e-9);
  EXPECT_NEAR(elastic_report.stats.delivered_bps,
              elastic_report.stats.offered_bps, 1.0);
}

}  // namespace
}  // namespace cisp::net
