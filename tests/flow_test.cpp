// Tests for the flow-level traffic backend: DemandMatrix aggregation and
// user apportionment, max-min fair allocation on hand-computed topologies
// (single bottleneck, parking lot, demand caps), thread-count invariance
// of the allocator (byte-identical rates), and the packet-vs-flow
// fidelity contract on a small instance.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "net/builder.hpp"
#include "net/flow/demand_matrix.hpp"
#include "net/flow/max_min.hpp"
#include "net/flow/monitors.hpp"
#include "net/routing.hpp"
#include "net/traffic_model.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace cisp::net {
namespace {

// ---------------------------------------------------------------------------
// Hand-built substrates
// ---------------------------------------------------------------------------

/// A directed chain 0 - 1 - ... - n-1 of duplex links with per-link
/// capacities (both directions alike) and 1 ms propagation per hop.
SimTopologyView chain_view(const std::vector<double>& caps_bps) {
  SimTopologyView view;
  view.latency_graph = graphs::Graph(caps_bps.size() + 1);
  for (std::size_t i = 0; i < caps_bps.size(); ++i) {
    view.latency_graph.add_edge(static_cast<graphs::NodeId>(i),
                                static_cast<graphs::NodeId>(i + 1), 0.001);
    view.edge_to_link.push_back(2 * i);
    view.capacity_bps.push_back(caps_bps[i]);
    view.latency_graph.add_edge(static_cast<graphs::NodeId>(i + 1),
                                static_cast<graphs::NodeId>(i), 0.001);
    view.edge_to_link.push_back(2 * i + 1);
    view.capacity_bps.push_back(caps_bps[i]);
  }
  return view;
}

flow::Allocation allocate(const SimTopologyView& view,
                          const std::vector<TrafficDemand>& demands,
                          const flow::AllocatorOptions& options = {}) {
  const RoutingResult routes =
      compute_routes(view, demands, RoutingScheme::ShortestPath);
  std::vector<double> rates;
  for (const auto& d : demands) rates.push_back(d.rate_bps);
  return flow::max_min_allocate(view, routes.paths, rates, options);
}

// ---------------------------------------------------------------------------
// DemandMatrix
// ---------------------------------------------------------------------------

TEST(DemandMatrix, FromTrafficMatchesHistoricalExpansion) {
  const std::vector<std::vector<double>> traffic = {
      {0, 2, 1}, {2, 0, 1}, {1, 1, 0}};
  const auto matrix = flow::DemandMatrix::from_traffic(traffic, 10.0, 0.1);
  const auto via_builder = demands_from_traffic(traffic, 10.0, 0.1);
  ASSERT_EQ(matrix.flow_count(), via_builder.size());
  double sum = 0.0;
  for (std::size_t f = 0; f < matrix.flow_count(); ++f) {
    EXPECT_EQ(matrix.pairs()[f].src, via_builder[f].src);
    EXPECT_EQ(matrix.pairs()[f].dst, via_builder[f].dst);
    EXPECT_DOUBLE_EQ(matrix.pairs()[f].rate_bps, via_builder[f].rate_bps);
    sum += matrix.pairs()[f].rate_bps;
  }
  EXPECT_NEAR(sum, 10.0 * 1e9 * 0.1, 1.0);
  EXPECT_NEAR(matrix.total_rate_bps(), sum, 1.0);
}

TEST(DemandMatrix, ApportionsUsersExactlyAndDeterministically) {
  const std::vector<std::vector<double>> traffic = {
      {0.0, 0.31, 0.07}, {0.17, 0.0, 0.23}, {0.05, 0.11, 0.0}};
  const std::uint64_t users = 1000003;  // prime: exercises the remainders
  const auto a = flow::DemandMatrix::from_users(traffic, users, 1e5);
  const auto b = flow::DemandMatrix::from_users(traffic, users, 1e5);
  EXPECT_EQ(a.total_users(), users);
  EXPECT_EQ(a.flow_count(), 6u);
  std::uint64_t sum = 0;
  for (std::size_t f = 0; f < a.flow_count(); ++f) {
    // Deterministic: two invocations agree pair by pair.
    EXPECT_EQ(a.pairs()[f].users, b.pairs()[f].users);
    // Rate is exactly users * per-user.
    EXPECT_DOUBLE_EQ(a.pairs()[f].rate_bps,
                     static_cast<double>(a.pairs()[f].users) * 1e5);
    sum += a.pairs()[f].users;
  }
  EXPECT_EQ(sum, users);
  // Proportionality: the largest matrix entry gets the most users.
  std::uint64_t max_users = 0;
  std::size_t argmax = 0;
  for (std::size_t f = 0; f < a.flow_count(); ++f) {
    if (a.pairs()[f].users > max_users) {
      max_users = a.pairs()[f].users;
      argmax = f;
    }
  }
  EXPECT_EQ(a.pairs()[argmax].src, 0u);
  EXPECT_EQ(a.pairs()[argmax].dst, 1u);
}

TEST(DemandMatrix, MillionUsersStayAggregated) {
  // The whole point of the fluid backend: 2 * 10^6 endpoints collapse to
  // O(pairs) state.
  std::vector<std::vector<double>> traffic(4, std::vector<double>(4, 1.0));
  for (int i = 0; i < 4; ++i) traffic[i][i] = 0.0;
  const auto matrix =
      flow::DemandMatrix::from_users(traffic, 2000000, 100e3);
  EXPECT_EQ(matrix.flow_count(), 12u);
  EXPECT_EQ(matrix.total_users(), 2000000u);
}

// ---------------------------------------------------------------------------
// Max-min fair allocation
// ---------------------------------------------------------------------------

TEST(MaxMin, SingleBottleneckSharesEqually) {
  // Three flows across one 9 Gbps link, all demanding more: 3 Gbps each.
  const auto view = chain_view({9e9});
  std::vector<TrafficDemand> demands(3, {0, 1, 10e9});
  const auto allocation = allocate(view, demands);
  for (const double rate : allocation.rate_bps) {
    EXPECT_NEAR(rate, 3e9, 1.0);
  }
  EXPECT_EQ(allocation.rounds, 1u);
  EXPECT_EQ(allocation.bottleneck_edges, 1u);
  EXPECT_NEAR(allocation.edge_load_bps[0], 9e9, 1.0);
}

TEST(MaxMin, ParkingLotHandComputed) {
  // Chain 0-1-2-3, all links 10 Gbps. Flows: long 0->3, plus one per hop.
  // The short 0->1 flow demands only 2 Gbps. Water-filling by hand:
  //   round 1: h = 2 (the capped flow freezes; every active flow is at 2)
  //   round 2: links 1-2 and 2-3 have 6 Gbps left over 2 flows -> h = 3;
  //            they saturate, freezing the long and both hop flows at 5.
  //   => long = 5, f(0->1) = 2, f(1->2) = 5, f(2->3) = 5.
  const auto view = chain_view({10e9, 10e9, 10e9});
  const std::vector<TrafficDemand> demands = {
      {0, 3, 10e9}, {0, 1, 2e9}, {1, 2, 10e9}, {2, 3, 10e9}};
  const auto allocation = allocate(view, demands);
  EXPECT_NEAR(allocation.rate_bps[0], 5e9, 1.0);
  EXPECT_NEAR(allocation.rate_bps[1], 2e9, 1.0);
  EXPECT_NEAR(allocation.rate_bps[2], 5e9, 1.0);
  EXPECT_NEAR(allocation.rate_bps[3], 5e9, 1.0);
  // First link carries long + capped short: 7 of 10 Gbps.
  EXPECT_NEAR(allocation.edge_load_bps[0], 7e9, 1.0);
}

TEST(MaxMin, TightFirstLinkPropagatesHeadroom) {
  // Caps {4, 10, 10} Gbps: the first link bottlenecks the long flow and
  // its local flow at 2, later flows pick up the slack to 8.
  const auto view = chain_view({4e9, 10e9, 10e9});
  const std::vector<TrafficDemand> demands = {
      {0, 3, 10e9}, {0, 1, 10e9}, {1, 2, 10e9}, {2, 3, 10e9}};
  const auto allocation = allocate(view, demands);
  EXPECT_NEAR(allocation.rate_bps[0], 2e9, 1.0);
  EXPECT_NEAR(allocation.rate_bps[1], 2e9, 1.0);
  EXPECT_NEAR(allocation.rate_bps[2], 8e9, 1.0);
  EXPECT_NEAR(allocation.rate_bps[3], 8e9, 1.0);
}

TEST(MaxMin, UncongestedFlowsGetTheirDemand) {
  const auto view = chain_view({10e9, 10e9});
  const std::vector<TrafficDemand> demands = {
      {0, 2, 1e9}, {0, 1, 2e9}, {1, 2, 3e9}};
  const auto allocation = allocate(view, demands);
  EXPECT_NEAR(allocation.rate_bps[0], 1e9, 1.0);
  EXPECT_NEAR(allocation.rate_bps[1], 2e9, 1.0);
  EXPECT_NEAR(allocation.rate_bps[2], 3e9, 1.0);
  EXPECT_EQ(allocation.bottleneck_edges, 0u);
}

TEST(MaxMin, ZeroDemandFlowsStayAtZero) {
  const auto view = chain_view({10e9});
  const std::vector<TrafficDemand> demands = {{0, 1, 0.0}, {0, 1, 5e9}};
  const auto allocation = allocate(view, demands);
  EXPECT_DOUBLE_EQ(allocation.rate_bps[0], 0.0);
  EXPECT_NEAR(allocation.rate_bps[1], 5e9, 1.0);
}

TEST(MaxMin, AllocationsAreByteIdenticalAcrossThreadCounts) {
  // A larger random instance; the pool is forced on via parallel_cutoff=1
  // so chunked reductions actually run sharded at threads > 1.
  const std::size_t n = 24;
  SimTopologyView view;
  view.latency_graph = graphs::Graph(n);
  Rng rng(404);
  const auto add_duplex = [&](std::size_t a, std::size_t b, double cap) {
    view.latency_graph.add_edge(static_cast<graphs::NodeId>(a),
                                static_cast<graphs::NodeId>(b),
                                rng.uniform(0.001, 0.005));
    view.edge_to_link.push_back(view.edge_to_link.size());
    view.capacity_bps.push_back(cap);
    view.latency_graph.add_edge(static_cast<graphs::NodeId>(b),
                                static_cast<graphs::NodeId>(a),
                                rng.uniform(0.001, 0.005));
    view.edge_to_link.push_back(view.edge_to_link.size());
    view.capacity_bps.push_back(cap);
  };
  for (std::size_t i = 0; i + 1 < n; ++i) {
    add_duplex(i, i + 1, rng.uniform(1e9, 5e9));
  }
  for (int chord = 0; chord < 20; ++chord) {
    const std::size_t a = rng.uniform_index(n);
    const std::size_t b = rng.uniform_index(n);
    if (a != b) add_duplex(a, b, rng.uniform(1e9, 5e9));
  }
  std::vector<TrafficDemand> demands;
  for (int f = 0; f < 600; ++f) {
    const auto a = static_cast<std::uint32_t>(rng.uniform_index(n));
    const auto b = static_cast<std::uint32_t>(rng.uniform_index(n));
    if (a == b) continue;
    demands.push_back({a, b, rng.uniform(1e7, 5e8)});
  }

  const RoutingResult routes =
      compute_routes(view, demands, RoutingScheme::ShortestPath);
  std::vector<double> rates;
  for (const auto& d : demands) rates.push_back(d.rate_bps);

  flow::AllocatorOptions serial;
  serial.threads = 1;
  const auto baseline = flow::max_min_allocate(view, routes.paths, rates,
                                               serial);
  EXPECT_GT(baseline.rounds, 1u);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4},
                                    std::size_t{0}}) {
    flow::AllocatorOptions options;
    options.threads = threads;
    options.parallel_cutoff = 1;
    const auto parallel =
        flow::max_min_allocate(view, routes.paths, rates, options);
    ASSERT_EQ(parallel.rate_bps.size(), baseline.rate_bps.size());
    EXPECT_EQ(std::memcmp(parallel.rate_bps.data(), baseline.rate_bps.data(),
                          baseline.rate_bps.size() * sizeof(double)),
              0)
        << "rates differ at threads=" << threads;
    EXPECT_EQ(std::memcmp(parallel.edge_load_bps.data(),
                          baseline.edge_load_bps.data(),
                          baseline.edge_load_bps.size() * sizeof(double)),
              0)
        << "edge loads differ at threads=" << threads;
    EXPECT_EQ(parallel.rounds, baseline.rounds);
  }
}

// ---------------------------------------------------------------------------
// TrafficModel seam: fidelity contract
// ---------------------------------------------------------------------------

/// Small 4-node design input (square with one MW diagonal), mirroring the
/// net_test fixture.
design::DesignInput square_input() {
  const double side = 500.0;
  const double diag = side * std::sqrt(2.0);
  std::vector<std::vector<double>> geod = {
      {0, side, diag, side},
      {side, 0, side, diag},
      {diag, side, 0, side},
      {side, diag, side, 0}};
  auto fiber = geod;
  for (auto& row : fiber) {
    for (double& v : row) v *= 1.9;
  }
  std::vector<std::vector<double>> traffic(4, std::vector<double>(4, 1.0));
  for (int i = 0; i < 4; ++i) traffic[i][i] = 0.0;
  std::vector<design::CandidateLink> cands = {{0, 2, diag * 1.05, 10.0}};
  return design::DesignInput(geod, fiber, traffic, cands, 10.0);
}

design::CapacityPlan square_plan() {
  design::CapacityPlan plan;
  plan.aggregate_gbps = 5.0;
  design::LinkProvision prov;
  prov.candidate_index = 0;
  prov.site_a = 0;
  prov.site_b = 2;
  prov.series = 3;
  plan.links.push_back(prov);
  return plan;
}

TEST(TrafficModel, ParsesAndPrintsBackends) {
  EXPECT_EQ(parse_traffic_backend("packet"), TrafficBackend::Packet);
  EXPECT_EQ(parse_traffic_backend("flow"), TrafficBackend::Flow);
  EXPECT_STREQ(to_string(TrafficBackend::Packet), "packet");
  EXPECT_STREQ(to_string(TrafficBackend::Flow), "flow");
  EXPECT_THROW((void)parse_traffic_backend("fluid"), cisp::Error);
}

TEST(TrafficModel, FlowMatchesPacketOnSmallInstance) {
  // The documented fidelity contract: below saturation the fluid backend's
  // analytic delay/stretch track the packet simulator within 5% + 0.5 ms
  // (the residual is queueing + serialization, absent from the fluid
  // model).
  const auto input = square_input();
  const auto plan = square_plan();
  std::vector<std::vector<double>> traffic(4, std::vector<double>(4, 1.0));
  for (int i = 0; i < 4; ++i) traffic[i][i] = 0.0;
  const auto demands = flow::DemandMatrix::from_traffic(traffic, 5.0, 0.1);

  TrafficRunOptions options;
  options.sim_duration_s = 0.2;
  options.seed = 99;

  const auto packet_report =
      make_traffic_model(TrafficBackend::Packet, input, plan)
          ->run(demands, options);
  const auto flow_report =
      make_traffic_model(TrafficBackend::Flow, input, plan)
          ->run(demands, options);

  // Uncongested on both backends.
  EXPECT_LT(packet_report.stats.loss_rate, 0.01);
  EXPECT_DOUBLE_EQ(flow_report.stats.loss_rate, 0.0);
  EXPECT_NEAR(flow_report.stats.delivered_bps, flow_report.stats.offered_bps,
              1.0);

  const double tolerance =
      0.05 * packet_report.stats.mean_delay_s + 0.0005;
  EXPECT_NEAR(flow_report.stats.mean_delay_s, packet_report.stats.mean_delay_s,
              tolerance);
  EXPECT_NEAR(flow_report.stats.mean_stretch, packet_report.stats.mean_stretch,
              0.05 * packet_report.stats.mean_stretch);

  // Same pairs, same routes: per-pair stretch within the same contract.
  ASSERT_EQ(flow_report.pairs.size(), packet_report.pairs.size());
  for (std::size_t f = 0; f < flow_report.pairs.size(); ++f) {
    EXPECT_EQ(flow_report.pairs[f].src, packet_report.pairs[f].src);
    EXPECT_EQ(flow_report.pairs[f].dst, packet_report.pairs[f].dst);
    EXPECT_NEAR(flow_report.pairs[f].stretch, packet_report.pairs[f].stretch,
                0.05 * packet_report.pairs[f].stretch + 0.05);
  }
}

TEST(TrafficModel, FlowBackendCarriesMillionsOfUsers) {
  // 10^6 endpoints on the square: the flow backend never materializes
  // per-user or per-packet state, so this runs in test time comfortably.
  const auto input = square_input();
  const auto plan = square_plan();
  std::vector<std::vector<double>> traffic(4, std::vector<double>(4, 1.0));
  for (int i = 0; i < 4; ++i) traffic[i][i] = 0.0;
  const auto demands =
      flow::DemandMatrix::from_users(traffic, 1000000, 3000.0);

  TrafficRunOptions options;
  const auto report = make_traffic_model(TrafficBackend::Flow, input, plan)
                          ->run(demands, options);
  EXPECT_EQ(report.stats.users, 1000000u);
  EXPECT_EQ(report.stats.flows, 12u);
  EXPECT_GE(report.stats.mean_stretch, 1.0);
  EXPECT_GT(report.stats.delivered_bps, 0.0);
  EXPECT_EQ(report.pairs.size(), 12u);
}

TEST(TrafficModel, PacketBackendDoesNotCountUnsimulatedPairsAsLoss) {
  // Demands below the one-packet emission threshold never get a UDP
  // source; they must read as delivered (the monitor's loss_rate excludes
  // them too), not as congestion loss.
  const auto input = square_input();
  const auto plan = square_plan();
  std::vector<std::vector<double>> traffic(4, std::vector<double>(4, 1.0));
  for (int i = 0; i < 4; ++i) traffic[i][i] = 0.0;
  // ~0.8 kbps per pair over a 50 ms window: well under one 500-byte packet.
  const auto demands = flow::DemandMatrix::from_traffic(traffic, 0.0001, 0.1);

  TrafficRunOptions options;
  options.sim_duration_s = 0.05;
  const auto report = make_traffic_model(TrafficBackend::Packet, input, plan)
                          ->run(demands, options);
  EXPECT_NEAR(report.stats.delivered_bps, report.stats.offered_bps, 1.0);
  for (const auto& pair : report.pairs) {
    EXPECT_DOUBLE_EQ(pair.delivered_bps, pair.offered_bps);
    EXPECT_GT(pair.latency_s, 0.0);  // propagation fallback
  }
}

TEST(TrafficModel, FlowReportsUnservedDemandAsLoss) {
  // Offered load far above the single MW diagonal + fiber capacities:
  // the allocator must cap delivery and report the shortfall.
  const auto input = square_input();
  const auto plan = square_plan();
  std::vector<std::vector<double>> traffic(4, std::vector<double>(4, 1.0));
  for (int i = 0; i < 4; ++i) traffic[i][i] = 0.0;
  // 10 Tbps offered against ~tens-of-Gbps of capacity.
  const auto demands = flow::DemandMatrix::from_traffic(traffic, 10000.0, 1.0);

  TrafficRunOptions options;
  const auto report = make_traffic_model(TrafficBackend::Flow, input, plan)
                          ->run(demands, options);
  EXPECT_GT(report.stats.loss_rate, 0.5);
  EXPECT_NEAR(report.stats.max_link_utilization, 1.0, 1e-6);
}

}  // namespace
}  // namespace cisp::net
