// Tests for the GeoJSON exporter: structural validity (balanced braces,
// expected feature kinds and counts) and property round-trips.

#include <gtest/gtest.h>

#include <algorithm>

#include "design/export.hpp"
#include "design/greedy.hpp"
#include "design/scenario.hpp"
#include "util/error.hpp"

namespace cisp::design {
namespace {

const Scenario& scenario() {
  static const Scenario s = [] {
    ScenarioOptions options;
    options.fast = true;
    options.top_cities = 40;
    return build_us_scenario(options);
  }();
  return s;
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(Export, TopologyGeoJsonShape) {
  const auto problem = city_city_problem(scenario(), 400.0, 12);
  const auto topo = solve_greedy(problem.input);
  ASSERT_FALSE(topo.links.empty());
  const std::string json = topology_to_geojson(problem, topo);

  EXPECT_EQ(count_occurrences(json, "\"FeatureCollection\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"kind\":\"site\""), 12u);
  EXPECT_EQ(count_occurrences(json, "\"kind\":\"mw-link\""),
            topo.links.size());
  EXPECT_EQ(count_occurrences(json, "\"LineString\""), topo.links.size());
  // Balanced braces / brackets (a cheap structural validity check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  // Site names present.
  EXPECT_NE(json.find(problem.names[0]), std::string::npos);
}

TEST(Export, PlanPropertiesAttach) {
  const auto problem = city_city_problem(scenario(), 400.0, 12);
  const auto topo = solve_greedy(problem.input);
  CapacityParams cap;
  cap.aggregate_gbps = 20.0;
  const auto plan = plan_capacity(problem.input, topo, problem.links,
                                  scenario().tower_graph.towers, cap);
  const std::string json = topology_to_geojson(problem, topo, &plan);
  EXPECT_EQ(count_occurrences(json, "\"demand_gbps\""), topo.links.size());
  EXPECT_EQ(count_occurrences(json, "\"series\""), topo.links.size());
}

TEST(Export, TowersGeoJsonCapRespected) {
  const auto& towers = scenario().tower_graph.towers;
  const std::string all = towers_to_geojson(towers, 0);
  const std::string capped = towers_to_geojson(towers, 50);
  EXPECT_EQ(count_occurrences(all, "\"kind\":\"tower\""), towers.size());
  EXPECT_EQ(count_occurrences(capped, "\"kind\":\"tower\""), 50u);
  EXPECT_EQ(std::count(capped.begin(), capped.end(), '{'),
            std::count(capped.begin(), capped.end(), '}'));
}

TEST(Export, CoordinatesAreLonLatOrder) {
  // GeoJSON wants [lon, lat]; US longitudes are negative, latitudes 24-50.
  const auto problem = city_city_problem(scenario(), 200.0, 5);
  const auto topo = solve_greedy(problem.input);
  const std::string json = topology_to_geojson(problem, topo);
  const auto pos = json.find("\"coordinates\":[");
  ASSERT_NE(pos, std::string::npos);
  const double first_coord =
      std::stod(json.substr(pos + std::string("\"coordinates\":[").size()));
  EXPECT_LT(first_coord, 0.0);  // longitude, not latitude
}

}  // namespace
}  // namespace cisp::design
