// Unit and integration tests for src/infra: city databases, coalescing,
// traffic matrices, tower generation, and the synthetic fiber network's
// calibration against the paper's ~1.9x fiber latency inflation.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <unordered_map>

#include "geo/geodesic.hpp"
#include "infra/city.hpp"
#include "infra/databases.hpp"
#include "infra/fiber.hpp"
#include "infra/towers.hpp"
#include "terrain/regions.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace cisp::infra {
namespace {

TEST(Databases, UsCityCountAndSanity) {
  const auto& cities = us_cities();
  EXPECT_GE(cities.size(), 195u);
  EXPECT_LE(cities.size(), 210u);
  // Sorted roughly by population: first is NYC.
  EXPECT_EQ(cities.front().name, "New York NY");
  EXPECT_GT(cities.front().population, 8000000u);
  const auto region = terrain::contiguous_us();
  for (const auto& c : cities) {
    EXPECT_TRUE(region.box.contains(c.pos)) << c.name;
    EXPECT_GT(c.population, 100000u) << c.name;
  }
}

TEST(Databases, UsCitiesDescendingPopulation) {
  const auto& cities = us_cities();
  for (std::size_t i = 1; i < cities.size(); ++i) {
    EXPECT_GE(cities[i - 1].population, cities[i].population)
        << cities[i].name;
  }
}

TEST(Databases, UsCityNamesUnique) {
  const auto& cities = us_cities();
  std::set<std::string> names;
  for (const auto& c : cities) names.insert(c.name);
  EXPECT_EQ(names.size(), cities.size());
}

TEST(Databases, EuCitiesSanity) {
  const auto& cities = eu_cities();
  EXPECT_GE(cities.size(), 100u);
  const auto region = terrain::europe();
  for (const auto& c : cities) {
    EXPECT_TRUE(region.box.contains(c.pos)) << c.name;
    EXPECT_GE(c.population, 295000u) << c.name;
  }
  EXPECT_EQ(cities.front().name, "London");
}

TEST(Databases, SixGoogleDatacenters) {
  const auto& dcs = google_us_datacenters();
  ASSERT_EQ(dcs.size(), 6u);
  const auto region = terrain::contiguous_us();
  for (const auto& dc : dcs) EXPECT_TRUE(region.box.contains(dc.pos));
}

TEST(Coalesce, PaperYieldsRoughly120UsCenters) {
  const auto centers = coalesce_cities(us_cities(), 50.0);
  // Paper: 200 cities coalesce into ~120 population centers.
  EXPECT_GE(centers.size(), 100u);
  EXPECT_LE(centers.size(), 140u);
  // Total population is conserved.
  std::uint64_t total_in = 0;
  for (const auto& c : us_cities()) total_in += c.population;
  std::uint64_t total_out = 0;
  for (const auto& c : centers) total_out += c.population;
  EXPECT_EQ(total_in, total_out);
}

TEST(Coalesce, MergesKnownSuburbPairs) {
  const auto centers = coalesce_cities(us_cities(), 50.0);
  // Dallas, Fort Worth, Arlington, Plano must be one center; same for
  // Minneapolis / St. Paul.
  std::unordered_map<std::string, int> center_of;
  for (std::size_t i = 0; i < centers.size(); ++i) {
    for (const std::size_t m : centers[i].member_cities) {
      center_of[us_cities()[m].name] = static_cast<int>(i);
    }
  }
  EXPECT_EQ(center_of.at("Dallas TX"), center_of.at("Fort Worth TX"));
  EXPECT_EQ(center_of.at("Dallas TX"), center_of.at("Plano TX"));
  EXPECT_EQ(center_of.at("Minneapolis MN"), center_of.at("St. Paul MN"));
  // And LA–San Diego stay separate (~180 km apart).
  EXPECT_NE(center_of.at("Los Angeles CA"), center_of.at("San Diego CA"));
}

TEST(Coalesce, ZeroRadiusKeepsAllCities) {
  const auto centers = coalesce_cities(us_cities(), 0.0);
  EXPECT_EQ(centers.size(), us_cities().size());
}

TEST(Coalesce, CentersSortedByPopulation) {
  const auto centers = coalesce_cities(us_cities(), 50.0);
  for (std::size_t i = 1; i < centers.size(); ++i) {
    EXPECT_GE(centers[i - 1].population, centers[i].population);
  }
  EXPECT_EQ(centers.front().name, "New York NY");
}

TEST(TopCities, TruncatesInOrder) {
  const auto top = top_cities(us_cities(), 10);
  ASSERT_EQ(top.size(), 10u);
  EXPECT_EQ(top[0].name, "New York NY");
  EXPECT_EQ(top[1].name, "Los Angeles CA");
}

TEST(TrafficMatrix, NormalizedSymmetricZeroDiagonal) {
  const auto centers = coalesce_cities(us_cities(), 50.0);
  const auto h = population_product_traffic(centers);
  double max_entry = 0.0;
  for (std::size_t i = 0; i < h.size(); ++i) {
    EXPECT_DOUBLE_EQ(h[i][i], 0.0);
    for (std::size_t j = 0; j < h.size(); ++j) {
      EXPECT_DOUBLE_EQ(h[i][j], h[j][i]);
      EXPECT_GE(h[i][j], 0.0);
      EXPECT_LE(h[i][j], 1.0);
      max_entry = std::max(max_entry, h[i][j]);
    }
  }
  EXPECT_DOUBLE_EQ(max_entry, 1.0);
}

TEST(Towers, DeterministicAndInBox) {
  const auto region = terrain::contiguous_us();
  TowerGenParams params;
  params.rural_towers = 500;  // keep the test fast
  const auto a = generate_towers(region, top_cities(us_cities(), 30), params);
  const auto b = generate_towers(region, top_cities(us_cities(), 30), params);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pos, b[i].pos);
    EXPECT_TRUE(region.box.contains(a[i].pos));
    EXPECT_GE(a[i].height_m, params.min_height_m);
    EXPECT_LE(a[i].height_m, params.max_height_m);
  }
}

TEST(Towers, FullUsRegistryLandsNearPaperScale) {
  const auto region = terrain::contiguous_us();
  const auto towers = generate_towers(region, us_cities());
  // Paper culls to 12,080 towers; we target the same order of magnitude.
  EXPECT_GE(towers.size(), 9000u);
  EXPECT_LE(towers.size(), 16000u);
}

TEST(Towers, DensityCapHolds) {
  const auto region = terrain::contiguous_us();
  TowerGenParams params;
  const auto towers = generate_towers(region, us_cities(), params);
  std::unordered_map<std::int64_t, std::size_t> cells;
  for (const auto& t : towers) {
    const auto row =
        static_cast<std::int64_t>(std::floor(t.pos.lat_deg / params.cell_deg));
    const auto col =
        static_cast<std::int64_t>(std::floor(t.pos.lon_deg / params.cell_deg));
    ++cells[row * 100000 + col];
  }
  for (const auto& [key, count] : cells) {
    EXPECT_LE(count, params.density_cap_per_cell);
  }
}

TEST(Towers, MetroDenserThanMountains) {
  const auto region = terrain::contiguous_us();
  const auto towers = generate_towers(region, us_cities());
  const geo::LatLon nyc{40.71, -74.01};
  const geo::LatLon wyoming_rockies{43.0, -109.5};
  std::size_t near_nyc = 0;
  std::size_t near_rockies = 0;
  for (const auto& t : towers) {
    if (geo::distance_km(t.pos, nyc) < 100.0) ++near_nyc;
    if (geo::distance_km(t.pos, wyoming_rockies) < 100.0) ++near_rockies;
  }
  EXPECT_GT(near_nyc, near_rockies * 2);
}

TEST(Fiber, CalibratedToPaperInflation) {
  const auto centers = coalesce_cities(us_cities(), 50.0);
  std::vector<geo::LatLon> sites;
  for (const auto& c : centers) sites.push_back(c.pos);
  const FiberNetwork fiber(sites);
  // Latency stretch vs c-latency across all pairs; the paper's
  // latency-optimal fiber figure is 1.93x (InterTubes + 1.5 refraction).
  Samples stretch;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    for (std::size_t j = i + 1; j < sites.size(); ++j) {
      const double geodesic = geo::distance_km(sites[i], sites[j]);
      if (geodesic < 100.0) continue;  // short pairs are noisy, as in paper
      stretch.add(fiber.latency_ms(i, j) / geo::c_latency_for_km(geodesic));
    }
  }
  EXPECT_GT(stretch.mean(), 1.75);
  EXPECT_LT(stretch.mean(), 2.15);
  // No pair can beat straight-line fiber physics.
  EXPECT_GE(stretch.min(), 1.5);
}

TEST(Fiber, MetricProperties) {
  const auto centers = coalesce_cities(us_cities(), 50.0);
  std::vector<geo::LatLon> sites;
  for (const auto& c : centers) sites.push_back(c.pos);
  const FiberNetwork fiber(sites);
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < 20; ++j) {
      EXPECT_DOUBLE_EQ(fiber.distance_km(i, j), fiber.distance_km(j, i));
      if (i == j) EXPECT_DOUBLE_EQ(fiber.distance_km(i, j), 0.0);
    }
  }
  // Triangle inequality (shortest paths in a graph are a metric).
  for (std::size_t i = 0; i < 15; ++i) {
    for (std::size_t j = 0; j < 15; ++j) {
      for (std::size_t k = 0; k < 15; ++k) {
        EXPECT_LE(fiber.distance_km(i, k),
                  fiber.distance_km(i, j) + fiber.distance_km(j, k) + 1e-9);
      }
    }
  }
}

TEST(Fiber, RejectsDegenerateInput) {
  EXPECT_THROW(FiberNetwork({{40.0, -100.0}}), Error);
}

TEST(Fiber, DeterministicForSeed) {
  std::vector<geo::LatLon> sites;
  for (const auto& c : top_cities(us_cities(), 40)) sites.push_back(c.pos);
  const FiberNetwork a(sites);
  const FiberNetwork b(sites);
  for (std::size_t i = 0; i < sites.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.distance_km(0, i), b.distance_km(0, i));
  }
}

}  // namespace
}  // namespace cisp::infra
