// Unit and property tests for the packet simulator: event ordering, link
// serialization/queueing arithmetic against hand computations, UDP delivery
// and loss, TCP correctness (completion, throughput bounds, pacing effect
// on queues), routing schemes, and conservation invariants.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "net/builder.hpp"
#include "net/link.hpp"
#include "net/monitors.hpp"
#include "net/node.hpp"
#include "net/routing.hpp"
#include "net/sim.hpp"
#include "net/tcp.hpp"
#include "net/udp.hpp"
#include "util/error.hpp"

namespace cisp::net {
namespace {

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(0.3, [&] { order.push_back(3); });
  sim.schedule(0.1, [&] { order.push_back(1); });
  sim.schedule(0.2, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 0.3);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulator, SimultaneousEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, NestedSchedulingAndRunUntil) {
  Simulator sim;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    sim.schedule(1.0, tick);
  };
  sim.schedule(0.0, tick);
  sim.run_until(5.5);
  EXPECT_EQ(count, 6);  // t = 0,1,2,3,4,5
  EXPECT_DOUBLE_EQ(sim.now(), 5.5);
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator sim;
  sim.schedule(1.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(0.5, [] {}), cisp::Error);
  EXPECT_THROW(sim.schedule(-1.0, [] {}), cisp::Error);
}

TEST(Link, SerializationPlusPropagationDelay) {
  Simulator sim;
  Time delivered_at = -1.0;
  // 1 Mbps link, 10 ms propagation: a 1250-byte packet takes 10 ms to
  // serialize, so delivery is at 20 ms.
  Link link(sim, 1e6, 0.010, 100,
            [&](const Packet&) { delivered_at = sim.now(); });
  Packet p;
  p.size_bytes = 1250;
  link.send(p);
  sim.run();
  EXPECT_NEAR(delivered_at, 0.020, 1e-12);
  EXPECT_EQ(link.packets_sent(), 1u);
}

TEST(Link, BackToBackPacketsQueue) {
  Simulator sim;
  std::vector<Time> deliveries;
  Link link(sim, 1e6, 0.0, 100,
            [&](const Packet&) { deliveries.push_back(sim.now()); });
  Packet p;
  p.size_bytes = 1250;  // 10 ms each at 1 Mbps
  link.send(p);
  link.send(p);
  link.send(p);
  sim.run();
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_NEAR(deliveries[0], 0.010, 1e-12);
  EXPECT_NEAR(deliveries[1], 0.020, 1e-12);
  EXPECT_NEAR(deliveries[2], 0.030, 1e-12);
}

TEST(Link, DropTailWhenFull) {
  Simulator sim;
  int delivered = 0;
  Link link(sim, 1e6, 0.0, 2, [&](const Packet&) { ++delivered; });
  Packet p;
  p.size_bytes = 1250;
  for (int i = 0; i < 10; ++i) link.send(p);
  sim.run();
  // 1 transmitting + 2 queued survive.
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(link.packets_dropped(), 7u);
}

TEST(Link, UtilizationAccounting) {
  Simulator sim;
  Link link(sim, 1e6, 0.0, 100, [](const Packet&) {});
  Packet p;
  p.size_bytes = 1250;  // 10 ms
  link.send(p);
  sim.run_until(0.1);
  EXPECT_NEAR(link.utilization(0.1), 0.1, 1e-9);
}

TEST(Network, ForwardsAlongInstalledRoute) {
  Simulator sim;
  Network net(sim, 3);  // 0 - 1 - 2 chain
  const std::size_t l01 = net.add_duplex_link(0, 1, 1e9, 0.001);
  const std::size_t l12 = net.add_duplex_link(1, 2, 1e9, 0.001);
  net.node(0).set_route(0, 2, &net.link(l01));
  net.node(1).set_route(0, 2, &net.link(l12));
  Time delivered = -1.0;
  net.node(2).set_local_deliver([&](const Packet&) { delivered = sim.now(); });
  Packet p;
  p.src = 0;
  p.dst = 2;
  p.size_bytes = 125;  // 1 us at 1 Gbps
  net.inject(p);
  sim.run();
  EXPECT_NEAR(delivered, 0.002 + 2e-6, 1e-12);
}

TEST(Network, MissingRouteCountsAsRoutingDrop) {
  Simulator sim;
  Network net(sim, 2);
  net.add_duplex_link(0, 1, 1e9, 0.001);
  Packet p;
  p.src = 0;
  p.dst = 1;
  p.size_bytes = 100;
  // No route installed: node 0 drops.
  net.inject(p);
  sim.run();
  EXPECT_EQ(net.node(0).routing_drops(), 1u);
}

TEST(Udp, CbrRateAndDeliveryAccounting) {
  Simulator sim;
  Network net(sim, 2);
  const std::size_t l = net.add_duplex_link(0, 1, 1e9, 0.005);
  net.node(0).set_route(0, 1, &net.link(l));
  FlowMonitor monitor;
  install_udp_sink(net, 1, monitor);
  UdpCbrSource source(net, monitor, 7, 0, 1, 4e6);  // 4 Mbps -> 1k pps
  source.start(0.0, 1.0, 42);
  sim.run();
  const auto& f = monitor.flow(7);
  EXPECT_NEAR(static_cast<double>(f.sent_packets), 1000.0, 10.0);
  EXPECT_EQ(f.sent_packets, f.received_packets);
  EXPECT_NEAR(f.delay_s.mean(), 0.005 + 500.0 * 8 / 1e9, 1e-9);
  EXPECT_DOUBLE_EQ(monitor.loss_rate(), 0.0);
}

TEST(Udp, OverloadedLinkLosesProportionally) {
  Simulator sim;
  Network net(sim, 2);
  const std::size_t l = net.add_duplex_link(0, 1, 1e6, 0.001, 10);
  net.node(0).set_route(0, 1, &net.link(l));
  FlowMonitor monitor;
  install_udp_sink(net, 1, monitor);
  // 2 Mbps into a 1 Mbps link: ~50% loss.
  UdpCbrSource source(net, monitor, 1, 0, 1, 2e6);
  source.start(0.0, 2.0, 7);
  sim.run();
  EXPECT_NEAR(monitor.loss_rate(), 0.5, 0.05);
}

TcpFlow::Params tcp_params(bool pacing) {
  TcpFlow::Params p;
  p.pacing = pacing;
  return p;
}

struct TcpHarness {
  Simulator sim;
  Network net{sim, 3};  // 0 (source) - 1 (middle) - 2 (sink)
  TcpRegistry registry;

  TcpHarness(double src_rate_bps, double bottleneck_bps,
             std::size_t queue = Link::kUnboundedQueue) {
    const std::size_t l01 =
        net.add_duplex_link(0, 1, src_rate_bps, 0.005, queue);
    const std::size_t l12 =
        net.add_duplex_link(1, 2, bottleneck_bps, 0.005, queue);
    // Forward path 0 -> 2 and reverse 2 -> 0 for the ACKs.
    net.node(0).set_route(0, 2, &net.link(l01));
    net.node(1).set_route(0, 2, &net.link(l12));
    net.node(2).set_route(2, 0, &net.link(l12 + 1));
    net.node(1).set_route(2, 0, &net.link(l01 + 1));
    registry.install(net, 0);
    registry.install(net, 2);
  }
};

TEST(Tcp, CompletesAndRespectsBandwidthBound) {
  TcpHarness h(1e8, 1e7);  // 100 Mbps ingress, 10 Mbps bottleneck
  TcpFlow flow(h.net, h.registry, 1, 0, 2, 1000000, tcp_params(false));
  flow.start(0.0);
  h.sim.run_until(30.0);
  ASSERT_TRUE(flow.complete());
  // 1 MB over 10 Mbps is at least 0.8 s; RTT ~20 ms adds slow-start time.
  EXPECT_GT(flow.fct_s(), 0.8);
  EXPECT_LT(flow.fct_s(), 3.0);
}

TEST(Tcp, FasterBottleneckFasterCompletion) {
  TcpHarness slow(1e8, 5e6);
  TcpFlow f1(slow.net, slow.registry, 1, 0, 2, 500000, tcp_params(false));
  f1.start(0.0);
  slow.sim.run_until(30.0);
  TcpHarness fast(1e8, 5e7);
  TcpFlow f2(fast.net, fast.registry, 1, 0, 2, 500000, tcp_params(false));
  f2.start(0.0);
  fast.sim.run_until(30.0);
  ASSERT_TRUE(f1.complete());
  ASSERT_TRUE(f2.complete());
  EXPECT_LT(f2.fct_s(), f1.fct_s());
}

TEST(Tcp, RecoversFromLossOnTightQueue) {
  TcpHarness h(1e9, 1e7, 5);  // severe speed mismatch, 5-packet queue
  TcpFlow flow(h.net, h.registry, 1, 0, 2, 300000, tcp_params(false));
  flow.start(0.0);
  h.sim.run_until(60.0);
  ASSERT_TRUE(flow.complete());
  EXPECT_GT(flow.retransmits(), 0u);
}

TEST(Tcp, PacingShrinksBottleneckQueue) {
  // The Fig. 6 mechanism: with a 10G ingress into a 100M bottleneck,
  // pacing keeps the queue much shorter.
  auto run = [&](bool pacing) {
    TcpHarness h(1e10, 1e8);
    std::vector<std::unique_ptr<TcpFlow>> flows;
    for (int i = 0; i < 5; ++i) {
      flows.push_back(std::make_unique<TcpFlow>(
          h.net, h.registry, 100 + i, 0, 2, 100000, tcp_params(pacing)));
      flows.back()->start(0.05 * i);
    }
    h.sim.run_until(20.0);
    for (auto& f : flows) EXPECT_TRUE(f->complete());
    // Bottleneck is link index 2 (the 1->2 direction).
    return h.net.link(2).queue_samples().percentile(95);
  };
  const double q_nopacing = run(false);
  const double q_pacing = run(true);
  EXPECT_LT(q_pacing, q_nopacing * 0.7);
}

TEST(Tcp, PacingDoesNotHurtCompletionTimes) {
  auto median_fct = [&](bool pacing) {
    TcpHarness h(1e10, 1e8);
    std::vector<std::unique_ptr<TcpFlow>> flows;
    for (int i = 0; i < 5; ++i) {
      flows.push_back(std::make_unique<TcpFlow>(
          h.net, h.registry, 200 + i, 0, 2, 100000, tcp_params(pacing)));
      flows.back()->start(0.3 * i);
    }
    h.sim.run_until(30.0);
    Samples fct;
    for (auto& f : flows) {
      EXPECT_TRUE(f->complete());
      if (f->complete()) fct.add(f->fct_s());
    }
    return fct.median();
  };
  const double m_nopacing = median_fct(false);
  const double m_pacing = median_fct(true);
  // Paper Fig. 6(b): medians essentially unaffected.
  EXPECT_NEAR(m_pacing, m_nopacing, m_nopacing * 0.5);
}

/// Small 4-node design input for builder/routing tests: a square with one
/// MW diagonal.
design::DesignInput square_input() {
  const double side = 500.0;
  const double diag = side * std::sqrt(2.0);
  std::vector<std::vector<double>> geod = {
      {0, side, diag, side},
      {side, 0, side, diag},
      {diag, side, 0, side},
      {side, diag, side, 0}};
  auto fiber = geod;
  for (auto& row : fiber) {
    for (double& v : row) v *= 1.9;
  }
  std::vector<std::vector<double>> traffic(4, std::vector<double>(4, 1.0));
  for (int i = 0; i < 4; ++i) traffic[i][i] = 0.0;
  std::vector<design::CandidateLink> cands = {{0, 2, diag * 1.05, 10.0}};
  return design::DesignInput(geod, fiber, traffic, cands, 10.0);
}

TEST(Builder, BuildsMwAndFiberLinks) {
  const auto input = square_input();
  const design::Topology topo = design::StretchEvaluator::evaluate(input, {0});
  design::CapacityPlan plan;
  plan.aggregate_gbps = 10.0;
  design::LinkProvision prov;
  prov.candidate_index = 0;
  prov.site_a = 0;
  prov.site_b = 2;
  prov.series = 2;
  plan.links.push_back(prov);
  const BuildOptions options;
  SimInstance instance = build_sim(input, plan, options);
  EXPECT_EQ(instance.network->node_count(), 4u);
  EXPECT_EQ(instance.mw_edges.size(), 2u);
  // MW capacity = series^2 * 1 Gbps * scale.
  EXPECT_NEAR(instance.view.capacity_bps[instance.mw_edges[0]],
              4e9 * options.rate_scale, 1.0);
  // Latency graph edges map to network links consistently.
  for (std::size_t e = 0; e < instance.view.latency_graph.edge_count(); ++e) {
    const auto& edge = instance.view.latency_graph.edge(
        static_cast<graphs::EdgeId>(e));
    EXPECT_EQ(instance.network->link_from(instance.view.edge_to_link[e]),
              edge.from);
    EXPECT_EQ(instance.network->link_to(instance.view.edge_to_link[e]),
              edge.to);
  }
  (void)topo;
}

TEST(Builder, DemandsSumToAggregate) {
  std::vector<std::vector<double>> traffic = {
      {0, 2, 1}, {2, 0, 1}, {1, 1, 0}};
  const auto demands = demands_from_traffic(traffic, 10.0, 0.1);
  double sum = 0.0;
  for (const auto& d : demands) sum += d.rate_bps;
  EXPECT_NEAR(sum, 10.0 * 1e9 * 0.1, 1.0);
  EXPECT_EQ(demands.size(), 6u);
}

TEST(Routing, SchemesRouteAllDemandsAndSpReportsMinLatency) {
  const auto input = square_input();
  design::CapacityPlan plan;
  plan.aggregate_gbps = 10.0;
  design::LinkProvision prov;
  prov.candidate_index = 0;
  prov.site_a = 0;
  prov.site_b = 2;
  prov.series = 3;
  plan.links.push_back(prov);
  SimInstance instance = build_sim(input, plan);
  std::vector<std::vector<double>> traffic(4, std::vector<double>(4, 1.0));
  for (int i = 0; i < 4; ++i) traffic[i][i] = 0.0;
  const auto demands = demands_from_traffic(traffic, 10.0, 0.1);

  const auto sp = install_routes(*instance.network, instance.view, demands,
                                 RoutingScheme::ShortestPath);
  const auto mm = install_routes(*instance.network, instance.view, demands,
                                 RoutingScheme::MinMaxUtilization);
  const auto to = install_routes(*instance.network, instance.view, demands,
                                 RoutingScheme::ThroughputOptimal);
  EXPECT_EQ(sp.paths.size(), demands.size());
  // Shortest path gives the lowest mean latency by definition.
  EXPECT_LE(sp.mean_path_latency_s, mm.mean_path_latency_s + 1e-12);
  EXPECT_LE(sp.mean_path_latency_s, to.mean_path_latency_s + 1e-12);
  // Alternative schemes cannot be worse on the bottleneck than SP by more
  // than numerical noise... they should be no worse or better.
  EXPECT_LE(mm.max_link_utilization, sp.max_link_utilization + 1e-9);
}

TEST(Routing, EndToEndUdpOverBuiltNetwork) {
  const auto input = square_input();
  design::CapacityPlan plan;
  plan.aggregate_gbps = 5.0;
  design::LinkProvision prov;
  prov.candidate_index = 0;
  prov.site_a = 0;
  prov.site_b = 2;
  prov.series = 3;
  plan.links.push_back(prov);
  SimInstance instance = build_sim(input, plan);
  std::vector<std::vector<double>> traffic(4, std::vector<double>(4, 1.0));
  for (int i = 0; i < 4; ++i) traffic[i][i] = 0.0;
  const auto demands = demands_from_traffic(traffic, 5.0, 0.1);
  install_routes(*instance.network, instance.view, demands,
                 RoutingScheme::ShortestPath);
  const auto sources = attach_udp_workload(instance, demands, 0.0, 0.2, 99);
  EXPECT_FALSE(sources.empty());
  instance.sim->run_until(0.4);
  EXPECT_GT(instance.monitor.total_sent(), 100u);
  // Low utilization: zero loss, delays bounded by fiber worst case.
  EXPECT_DOUBLE_EQ(instance.monitor.loss_rate(), 0.0);
  EXPECT_LT(instance.monitor.mean_delay_s(),
            input.fiber_effective_km(0, 2) / 299792.458 + 0.01);
  // Conservation: received <= sent.
  EXPECT_LE(instance.monitor.total_received(), instance.monitor.total_sent());
}

}  // namespace
}  // namespace cisp::net
