// Unit and property tests for src/util: RNG determinism and distribution
// sanity, summary statistics, CDFs, and table rendering.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace cisp {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == b());
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(3);
  std::array<int, 7> counts{};
  for (int i = 0; i < 70000; ++i) ++counts[rng.uniform_index(7)];
  for (int c : counts) EXPECT_GT(c, 8000);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(200.0));
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng b = a.fork();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == b());
  EXPECT_LT(equal, 5);
}

TEST(Rng, ChanceProbability) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Splitmix, IsDeterministicAndMixes) {
  EXPECT_EQ(splitmix64(0), splitmix64(0));
  EXPECT_NE(splitmix64(0), splitmix64(1));
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(Samples, BasicStatistics) {
  Samples s({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
  EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(Samples, PercentileInterpolates) {
  Samples s({0.0, 10.0});
  EXPECT_DOUBLE_EQ(s.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 2.5);
}

TEST(Samples, PercentileAfterIncrementalAdds) {
  Samples s;
  for (int i = 100; i >= 1; --i) s.add(i);
  EXPECT_DOUBLE_EQ(s.median(), 50.5);
  s.add(1000.0);
  EXPECT_DOUBLE_EQ(s.max(), 1000.0);
}

TEST(Samples, EmptyThrows) {
  Samples s;
  EXPECT_THROW(s.mean(), Error);
  EXPECT_THROW(s.percentile(50), Error);
  EXPECT_THROW(s.min(), Error);
}

TEST(Samples, PercentileRangeChecked) {
  Samples s({1.0});
  EXPECT_THROW(s.percentile(-1), Error);
  EXPECT_THROW(s.percentile(101), Error);
}

TEST(Cdf, MonotoneAndCovering) {
  Rng rng(31);
  Samples s;
  for (int i = 0; i < 5000; ++i) s.add(rng.normal(10.0, 2.0));
  const auto cdf = empirical_cdf(s, 32);
  ASSERT_GE(cdf.size(), 2u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].value, cdf[i].value);
    EXPECT_LT(cdf[i - 1].probability, cdf[i].probability);
  }
  EXPECT_DOUBLE_EQ(cdf.back().probability, 1.0);
  EXPECT_DOUBLE_EQ(cdf.front().value, s.min());
  EXPECT_DOUBLE_EQ(cdf.back().value, s.max());
}

TEST(OnlineStats, TracksMinMeanMax) {
  OnlineStats s;
  s.add(3.0);
  s.add(1.0);
  s.add(5.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(OnlineStats, EmptyMeanIsZeroAndMinMaxNaN) {
  OnlineStats s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
}

TEST(WeightedMean, WeightsApply) {
  WeightedMean m;
  m.add(1.0, 1.0);
  m.add(3.0, 3.0);
  EXPECT_DOUBLE_EQ(m.value(), 2.5);
  EXPECT_DOUBLE_EQ(m.total_weight(), 4.0);
}

TEST(WeightedMean, ZeroWeightThrows) {
  WeightedMean m;
  EXPECT_THROW((void)m.value(), Error);
}

TEST(Table, RendersAllCells) {
  Table t("demo", {"a", "b"});
  t.add_row({"1", "hello"});
  t.add_row_numeric({2.5, 3.25}, 2);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("hello"), std::string::npos);
  EXPECT_NE(out.find("2.50"), std::string::npos);
  EXPECT_NE(out.find("3.25"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table t("demo", {"x"});
  t.add_row({std::string("a,\"b\"")});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "x\n\"a,\"\"b\"\"\"\n");
}

TEST(Table, RowWidthMismatchThrows) {
  Table t("demo", {"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only-one")}), Error);
}

TEST(Fmt, FormatsNumbersAndMoney) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_money(0.81), "$0.81");
}

TEST(Error, RequireMacroCarriesMessage) {
  try {
    CISP_REQUIRE(1 == 2, "one is not two");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("one is not two"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace cisp
