// Tests for the failure-reactive control plane (net/control): incremental
// route repair must be byte-identical to the full-recompute oracle after
// arbitrary delta sequences (down/up/derate, several seeds and topologies)
// and invariant across thread counts; the detour policy must never admit a
// route over its stretch bound; the constructed A/B/C fixture pins the PR 5
// non-monotonicity under pinned routing AND its repair under the control
// plane; the weather coupling must be deterministic, bounded, MW-only and
// monotone in path length; and the traffic-model seam must honor denied
// pairs and capacity derates.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "geo/latlon.hpp"
#include "net/builder.hpp"
#include "net/control/route_repair.hpp"
#include "net/control/weather_coupling.hpp"
#include "net/flow/max_min.hpp"
#include "net/scenario/failure_model.hpp"
#include "net/traffic_model.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace cisp::net {
namespace {

// ---------------------------------------------------------------------------
// Synthetic fixtures: a LinkPlan plus planar coordinates (km) that define
// the geodesic direct_km the stretch bound divides by.
// ---------------------------------------------------------------------------

struct Fixture {
  LinkPlan plan;
  std::vector<std::array<double, 2>> xy;
  std::vector<TrafficDemand> demands;

  [[nodiscard]] flow::DirectKmFn direct_km() const {
    const auto coords = xy;
    return [coords](std::uint32_t s, std::uint32_t t) {
      const double dx = coords[s][0] - coords[t][0];
      const double dy = coords[s][1] - coords[t][1];
      return std::sqrt(dx * dx + dy * dy);
    };
  }
};

void add_link(LinkPlan& plan, std::uint32_t a, std::uint32_t b, double gbps,
              double km, bool mw, double path_stretch = 1.0) {
  PlannedLink link;
  link.a = a;
  link.b = b;
  link.rate_bps = gbps * 1e9;
  link.latency_s = km * path_stretch / geo::kSpeedOfLightKmPerS;
  link.queue_packets = 100;
  link.is_mw = mw;
  plan.links.push_back(link);
}

double km_between(const Fixture& f, std::uint32_t a, std::uint32_t b) {
  return f.direct_km()(a, b);
}

/// 4 nodes on a 500 km square, one MW diagonal, fiber perimeter at 1.9x.
Fixture square_fixture() {
  Fixture f;
  f.xy = {{0, 0}, {500, 0}, {500, 500}, {0, 500}};
  f.plan.node_count = 4;
  add_link(f.plan, 0, 2, 10.0, km_between(f, 0, 2), true);
  add_link(f.plan, 0, 1, 400.0, 500.0, false, 1.9);
  add_link(f.plan, 1, 2, 400.0, 500.0, false, 1.9);
  add_link(f.plan, 2, 3, 400.0, 500.0, false, 1.9);
  add_link(f.plan, 3, 0, 400.0, 500.0, false, 1.9);
  for (std::uint32_t s = 0; s < 4; ++s) {
    for (std::uint32_t t = 0; t < 4; ++t) {
      if (s != t) f.demands.push_back({s, t, 1e9});
    }
  }
  return f;
}

/// 4 nodes in a line with an MW link AND a parallel fiber link per hop —
/// parallel duplex links exercise the mask-aware edge pinning.
Fixture chain_fixture() {
  Fixture f;
  f.xy = {{0, 0}, {400, 0}, {800, 0}, {1200, 0}};
  f.plan.node_count = 4;
  const double caps[] = {3.0, 9.0, 6.0};
  for (std::uint32_t i = 0; i < 3; ++i) {
    add_link(f.plan, i, i + 1, caps[i], 400.0, true);
    add_link(f.plan, i, i + 1, 400.0, 400.0, false, 2.0);
  }
  f.demands = {{0, 3, 1e9}, {3, 0, 1e9}, {0, 2, 2e9},
               {1, 3, 1e9}, {0, 1, 1e9}, {2, 3, 1e9}};
  return f;
}

/// 12 seeded random nodes: a fiber chain keeps everything connected while
/// MW shortcuts of varying capacity give the repairer real choices.
Fixture random_fixture(std::uint64_t seed) {
  Fixture f;
  Rng rng(seed);
  const std::uint32_t n = 12;
  f.plan.node_count = n;
  for (std::uint32_t i = 0; i < n; ++i) {
    f.xy.push_back({rng.uniform(0.0, 2000.0), rng.uniform(0.0, 2000.0)});
  }
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    add_link(f.plan, i, i + 1, 400.0, km_between(f, i, i + 1), false, 1.8);
  }
  add_link(f.plan, 0, n - 1, 400.0, km_between(f, 0, n - 1), false, 1.8);
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto j = static_cast<std::uint32_t>((i + 2 + rng.uniform_index(4)) %
                                              n);
    if (j == i) continue;
    add_link(f.plan, i, j, rng.uniform(2.0, 20.0), km_between(f, i, j), true);
  }
  for (int d = 0; d < 20; ++d) {
    const auto s = static_cast<std::uint32_t>(rng.uniform_index(n));
    const auto t = static_cast<std::uint32_t>(rng.uniform_index(n));
    if (s != t) f.demands.push_back({s, t, rng.uniform(0.5e9, 3e9)});
  }
  return f;
}

std::vector<Fixture> all_fixtures() {
  return {square_fixture(), chain_fixture(), random_fixture(71)};
}

/// 1-3 random deltas: down, restore, or derate, on any link.
std::vector<control::LinkDelta> random_batch(Rng& rng, std::size_t links) {
  std::vector<control::LinkDelta> batch;
  const std::size_t n = 1 + rng.uniform_index(3);
  for (std::size_t i = 0; i < n; ++i) {
    control::LinkDelta delta;
    delta.link = rng.uniform_index(links);
    switch (rng.uniform_index(3)) {
      case 0:
        delta.up = false;
        break;
      case 1:
        delta.up = true;
        break;
      default:
        delta.up = true;
        delta.capacity_factor = rng.uniform(0.25, 0.95);
        break;
    }
    batch.push_back(delta);
  }
  return batch;
}

void expect_routes_equal(const std::vector<control::PairRoute>& a,
                         const std::vector<control::PairRoute>& b,
                         const char* context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (std::size_t p = 0; p < a.size(); ++p) {
    EXPECT_EQ(a[p].path.nodes, b[p].path.nodes) << context << " pair " << p;
    EXPECT_EQ(a[p].path.edges, b[p].path.edges) << context << " pair " << p;
    EXPECT_EQ(a[p].denied, b[p].denied) << context << " pair " << p;
    EXPECT_EQ(a[p].detoured, b[p].detoured) << context << " pair " << p;
    // Byte-identity, not approximate equality: both sides sum the same
    // edge weights in the same order.
    EXPECT_EQ(a[p].latency_s, b[p].latency_s) << context << " pair " << p;
    EXPECT_EQ(a[p].stretch, b[p].stretch) << context << " pair " << p;
  }
}

// ---------------------------------------------------------------------------
// Incremental repair == full recompute, over randomized delta sequences
// ---------------------------------------------------------------------------

TEST(RouteRepair, MatchesFullRecomputeAfterEveryRandomizedStep) {
  control::DetourPolicy policy;
  policy.max_stretch = 2.2;  // tight enough that denials get exercised
  std::size_t fixture_id = 0;
  for (const Fixture& f : all_fixtures()) {
    for (const std::uint64_t seed : {11u, 22u, 33u, 44u}) {
      control::RouteRepairer repairer(f.plan, f.demands, policy,
                                      f.direct_km());
      Rng rng(seed);
      for (int step = 0; step < 30; ++step) {
        (void)repairer.apply(random_batch(rng, f.plan.links.size()));
        const auto oracle = control::RouteRepairer::full_recompute(
            f.plan, f.demands, policy, f.direct_km(), repairer.link_state());
        SCOPED_TRACE("fixture " + std::to_string(fixture_id) + " seed " +
                     std::to_string(seed) + " step " + std::to_string(step));
        expect_routes_equal(repairer.routes(), oracle, "incremental/oracle");
      }
      repairer.reset();
      const auto intact = control::RouteRepairer::full_recompute(
          f.plan, f.demands, policy, f.direct_km(), repairer.link_state());
      expect_routes_equal(repairer.routes(), intact, "after reset");
    }
    ++fixture_id;
  }
}

TEST(RouteRepair, RoutesAreThreadCountInvariant) {
  control::DetourPolicy policy;
  policy.max_stretch = 2.2;
  for (const Fixture& f : {square_fixture(), random_fixture(71)}) {
    // Pre-draw the batches so every thread count replays the same history.
    Rng rng(5);
    std::vector<std::vector<control::LinkDelta>> batches;
    for (int step = 0; step < 15; ++step) {
      batches.push_back(random_batch(rng, f.plan.links.size()));
    }
    control::RouteRepairer reference(f.plan, f.demands, policy, f.direct_km(),
                                     1);
    std::vector<std::vector<control::PairRoute>> expected;
    for (const auto& batch : batches) {
      (void)reference.apply(batch);
      expected.push_back(reference.routes());
    }
    for (const std::size_t threads : {std::size_t{2}, std::size_t{4},
                                      std::size_t{0}}) {
      control::RouteRepairer repairer(f.plan, f.demands, policy,
                                      f.direct_km(), threads);
      for (std::size_t step = 0; step < batches.size(); ++step) {
        (void)repairer.apply(batches[step]);
        SCOPED_TRACE("threads " + std::to_string(threads) + " step " +
                     std::to_string(step));
        expect_routes_equal(repairer.routes(), expected[step], "threads/1");
      }
    }
  }
}

TEST(RouteRepair, NeverAdmitsARouteOverTheStretchBound) {
  const Fixture f = random_fixture(71);
  control::DetourPolicy policy;
  policy.max_stretch = 1.5;
  control::RouteRepairer repairer(f.plan, f.demands, policy, f.direct_km());
  Rng rng(9);
  std::size_t denied_seen = 0;
  for (int step = 0; step < 30; ++step) {
    (void)repairer.apply(random_batch(rng, f.plan.links.size()));
    for (const auto& route : repairer.routes()) {
      if (route.denied) {
        EXPECT_TRUE(route.path.empty());
        EXPECT_EQ(route.latency_s, 0.0);
        ++denied_seen;
      } else {
        EXPECT_FALSE(route.path.empty());
        EXPECT_LE(route.stretch, policy.max_stretch);
      }
    }
  }
  // The bound must actually bite somewhere in 30 random steps, or this
  // test is vacuous.
  EXPECT_GT(denied_seen, 0u);
}

TEST(RouteRepair, RejectsBadInput) {
  const Fixture f = square_fixture();
  control::DetourPolicy policy;
  control::RouteRepairer repairer(f.plan, f.demands, policy, f.direct_km());
  EXPECT_THROW(
      (void)repairer.apply({control::LinkDelta{f.plan.links.size(), false}}),
      cisp::Error);
  EXPECT_THROW((void)repairer.apply({control::LinkDelta{0, true, 1.5}}),
               cisp::Error);
  policy.candidates = 0;
  EXPECT_THROW(control::RouteRepairer(f.plan, f.demands, policy,
                                      f.direct_km()),
               cisp::Error);
}

// ---------------------------------------------------------------------------
// The monotonicity anchor: PR 5's dip under pinned routing, repaired away
// ---------------------------------------------------------------------------

/// A=(0,0), B=(500,100), C=(1000,0). MW trunks A-C (12 Gbps, cut first by
/// CutLargestK), A-B (10 Gbps) and a thin meandering B-C (2 Gbps, tower
/// path 2.5x geodesic so it never attracts degraded shortest paths);
/// fiber everywhere at 2x path stretch. Demands A->B and A->C, 8 Gbps
/// each — at k=1 both shortest paths share the 10 Gbps A-B trunk.
Fixture anchor_fixture() {
  Fixture f;
  f.xy = {{0, 0}, {500, 100}, {1000, 0}};
  f.plan.node_count = 3;
  add_link(f.plan, 0, 2, 12.0, km_between(f, 0, 2), true);
  add_link(f.plan, 0, 1, 10.0, km_between(f, 0, 1), true);
  add_link(f.plan, 1, 2, 2.0, km_between(f, 1, 2), true, 2.5);
  add_link(f.plan, 0, 1, 400.0, km_between(f, 0, 1), false, 2.0);
  add_link(f.plan, 0, 2, 400.0, km_between(f, 0, 2), false, 2.0);
  add_link(f.plan, 1, 2, 400.0, km_between(f, 1, 2), false, 2.0);
  f.demands = {{0, 1, 8e9}, {0, 2, 8e9}};
  return f;
}

double unserved_gbps(const SimTopologyView& view,
                     const std::vector<graphs::Path>& paths,
                     const std::vector<TrafficDemand>& demands) {
  std::vector<double> rates;
  for (const auto& d : demands) rates.push_back(d.rate_bps);
  double offered = 0.0;
  double delivered = 0.0;
  std::vector<graphs::Path> served_paths;
  std::vector<double> served_rates;
  for (std::size_t p = 0; p < paths.size(); ++p) {
    offered += rates[p];
    if (!paths[p].empty()) {
      served_paths.push_back(paths[p]);
      served_rates.push_back(rates[p]);
    }
  }
  if (!served_paths.empty()) {
    const auto allocation =
        flow::max_min_allocate(view, served_paths, served_rates);
    for (const double r : allocation.rate_bps) delivered += r;
  }
  return (offered - delivered) / 1e9;
}

TEST(RouteRepair, RepairsThePinnedRoutingNonMonotonicity) {
  const Fixture f = anchor_fixture();
  std::vector<double> pinned;
  std::vector<double> repaired;
  for (const std::size_t k : {0u, 1u, 2u}) {
    // Pinned: latency-shortest on the degraded plan (the PR 5 behaviour).
    scenario::FailureModel model;
    model.kind = scenario::FailureModel::Kind::CutLargestK;
    model.k = k;
    const auto outcome = scenario::apply_failures(f.plan, model);
    const TopologyView degraded = view_from_plan(outcome.plan);
    const auto routes = compute_routes(degraded.view, f.demands,
                                       RoutingScheme::ShortestPath);
    pinned.push_back(unserved_gbps(degraded.view, routes.paths, f.demands));

    // Repaired: the control plane masks the same failures on the intact
    // plan (unbounded stretch — the availability-first operating point).
    control::RouteRepairer repairer(f.plan, f.demands, {}, f.direct_km());
    std::vector<control::LinkDelta> deltas;
    for (const std::size_t link : outcome.failed_links) {
      deltas.push_back(control::LinkDelta{link, false});
    }
    (void)repairer.apply(deltas);
    repaired.push_back(
        unserved_gbps(repairer.view(), repairer.traffic_paths(), f.demands));
  }

  // Pinned reproduces the PR 5 dip: cutting ONE trunk strands demand on
  // the thin surviving B-C trunk (unserved 6), cutting BOTH pushes
  // everything to plentiful fiber (unserved 0) — non-monotone in k.
  EXPECT_NEAR(pinned[0], 0.0, 1e-6);
  EXPECT_NEAR(pinned[1], 6.0, 1e-6);
  EXPECT_NEAR(pinned[2], 0.0, 1e-6);

  // The control plane's capacity-aware detours + congestion rebalance
  // serve everything at every k: monotone non-decreasing, never worse
  // than pinned.
  for (std::size_t i = 0; i < repaired.size(); ++i) {
    EXPECT_NEAR(repaired[i], 0.0, 1e-6) << "k=" << i;
    EXPECT_LE(repaired[i], pinned[i] + 1e-6) << "k=" << i;
    if (i > 0) {
      EXPECT_GE(repaired[i] + 1e-6, repaired[i - 1]) << "k=" << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Weather coupling
// ---------------------------------------------------------------------------

Fixture weather_fixture() {
  Fixture f;
  f.xy = {{0, 0}, {120, 0}, {240, 0}};
  f.plan.node_count = 3;
  add_link(f.plan, 0, 1, 10.0, 120.0, true);
  add_link(f.plan, 1, 2, 10.0, 120.0, true);
  add_link(f.plan, 0, 2, 400.0, 240.0, false, 2.0);
  return f;
}

std::vector<geo::LatLon> weather_sites() {
  return {{39.0, -98.0}, {39.0, -96.6}, {39.0, -95.2}};
}

weather::RainField test_rain() {
  terrain::BoundingBox box;
  box.lat_min = 36.0;
  box.lat_max = 42.0;
  box.lon_min = -101.0;
  box.lon_max = -92.0;
  weather::RainParams params;
  params.seed = 404;
  return weather::RainField(box, params);
}

TEST(WeatherCoupling, FactorsAreDeterministicBoundedAndMwOnly) {
  const Fixture f = weather_fixture();
  const auto sites = weather_sites();
  const auto geometry = control::link_geometry(f.plan, sites);
  ASSERT_EQ(geometry.size(), f.plan.links.size());
  const auto rain = test_rain();
  for (const double t_s : {0.0, 0.3 * weather::kYearS, 0.7 * weather::kYearS}) {
    const auto a = control::link_capacity_factors(f.plan, geometry, rain, t_s);
    const auto b = control::link_capacity_factors(f.plan, geometry, rain, t_s);
    EXPECT_EQ(a, b);  // pure function of (geometry, field, t)
    for (const double factor : a) {
      EXPECT_GE(factor, 0.0);
      EXPECT_LE(factor, 1.0);
    }
    EXPECT_DOUBLE_EQ(a[2], 1.0);  // fiber never degrades
  }
}

TEST(WeatherCoupling, DeltasAreMwOnlyAndChangeDriven) {
  const Fixture f = weather_fixture();
  std::vector<control::LinkState> state(f.plan.links.size());
  // Link 0 derates, link 1 goes binary-down, fiber's factor is ignored.
  const std::vector<double> factors = {0.5, 0.0, 0.25};
  const auto deltas = control::deltas_from_factors(f.plan, factors, state);
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_EQ(deltas[0].link, 0u);
  EXPECT_TRUE(deltas[0].up);
  EXPECT_DOUBLE_EQ(deltas[0].capacity_factor, 0.5);
  EXPECT_EQ(deltas[1].link, 1u);
  EXPECT_FALSE(deltas[1].up);
  // Once the state reflects the factors, the same factors emit no churn.
  state[0] = {true, 0.5};
  state[1] = {false, 1.0};
  EXPECT_TRUE(control::deltas_from_factors(f.plan, factors, state).empty());
}

TEST(WeatherCoupling, LongerPathsFailAtLeastAsOften) {
  // Same endpoints (same rain samples), different claimed path lengths,
  // hop_km large enough that both stay single-hop: the longer path sees
  // more attenuation against a smaller margin, so its factor can only be
  // lower and its outage probability higher.
  control::LinkGeometry short_link{{39.0, -98.0}, {39.0, -97.0}, 10.0};
  control::LinkGeometry long_link{{39.0, -98.0}, {39.0, -97.0}, 100.0};
  control::WeatherCouplingParams params;
  params.hop_km = 150.0;
  const auto rain = test_rain();
  for (int e = 0; e < 200; ++e) {
    const double t_s = (e + 0.5) * weather::kYearS / 200.0;
    EXPECT_LE(control::link_capacity_factor(long_link, rain, t_s, params),
              control::link_capacity_factor(short_link, rain, t_s, params));
  }

  LinkPlan two;
  two.node_count = 2;
  add_link(two, 0, 1, 10.0, 10.0, true);
  add_link(two, 0, 1, 10.0, 100.0, true);
  const auto p = control::weather_down_probabilities(
      two, {short_link, long_link}, rain, 200, params);
  EXPECT_GE(p[1], p[0]);
}

// ---------------------------------------------------------------------------
// Traffic-model seam: route overrides and capacity derates
// ---------------------------------------------------------------------------

/// The scenario_test 4-node square design (fiber mesh + one MW diagonal),
/// small enough to reason about exactly.
design::DesignInput seam_input() {
  const double side = 500.0;
  const double diag = side * std::sqrt(2.0);
  std::vector<std::vector<double>> geod = {{0, side, diag, side},
                                           {side, 0, side, diag},
                                           {diag, side, 0, side},
                                           {side, diag, side, 0}};
  auto fiber = geod;
  for (auto& row : fiber) {
    for (double& v : row) v *= 1.9;
  }
  std::vector<std::vector<double>> traffic(4, std::vector<double>(4, 1.0));
  for (int i = 0; i < 4; ++i) traffic[i][i] = 0.0;
  std::vector<design::CandidateLink> cands = {{0, 2, diag * 1.05, 10.0}};
  return design::DesignInput(geod, fiber, traffic, cands, 10.0);
}

design::CapacityPlan seam_plan() {
  design::CapacityPlan plan;
  plan.aggregate_gbps = 5.0;
  design::LinkProvision prov;
  prov.candidate_index = 0;
  prov.site_a = 0;
  prov.site_b = 2;
  prov.series = 3;
  plan.links.push_back(prov);
  return plan;
}

TEST(ControlSeam, DeniedPairsDeliverZeroAndDeratesScaleCapacity) {
  const auto input = seam_input();
  const auto plan = seam_plan();
  std::vector<std::vector<double>> traffic(4, std::vector<double>(4, 1.0));
  for (int i = 0; i < 4; ++i) traffic[i][i] = 0.0;
  const auto demands = flow::DemandMatrix::from_traffic(traffic, 1.0, 0.1);
  const LinkPlan base_plan = plan_links(input, plan, {});
  const auto direct = [&](std::uint32_t s, std::uint32_t t) {
    return input.geodesic_km(s, t);
  };

  const auto model = make_traffic_model(TrafficBackend::Flow, input, plan);
  TrafficRunOptions options;
  const auto intact = model->run(demands, options);
  EXPECT_NEAR(intact.stats.delivered_bps, intact.stats.offered_bps, 1.0);

  // Stretch bound 1.5: the full fiber mesh sits at 1.9x, so every
  // fiber-routed pair is denied even intact — only the 0<->2 MW pairs
  // (1.05x) survive. Partial denial first, then downing the MW trunk
  // denies everything (the allocator's all-denied edge case).
  control::DetourPolicy policy;
  policy.max_stretch = 1.5;
  control::RouteRepairer repairer(base_plan, demands.to_demands(), policy,
                                  direct);
  std::size_t denied_intact = 0;
  for (const auto& route : repairer.routes()) {
    if (route.denied) ++denied_intact;
  }
  EXPECT_EQ(denied_intact, 10u);
  options.plan = &base_plan;
  const auto intact_paths = repairer.traffic_paths();
  const auto intact_factors = repairer.capacity_factors();
  options.paths = &intact_paths;
  options.capacity_factor = &intact_factors;
  const auto partial = model->run(demands, options);
  double denied_offered = 0.0;
  for (std::size_t p = 0; p < intact_paths.size(); ++p) {
    if (!intact_paths[p].empty()) continue;
    denied_offered += demands.pairs()[p].rate_bps;
    EXPECT_EQ(partial.pairs[p].delivered_bps, 0.0);
  }
  EXPECT_GT(denied_offered, 0.0);
  EXPECT_NEAR(partial.stats.delivered_bps,
              partial.stats.offered_bps - denied_offered, 1.0);

  std::vector<control::LinkDelta> down;
  for (std::size_t i = 0; i < base_plan.links.size(); ++i) {
    if (base_plan.links[i].is_mw) down.push_back({i, false});
  }
  const auto stats = repairer.apply(down);
  EXPECT_EQ(stats.denied_pairs, demands.pairs().size());
  const auto paths = repairer.traffic_paths();
  const auto factors = repairer.capacity_factors();
  options.paths = &paths;
  options.capacity_factor = &factors;
  const auto degraded = model->run(demands, options);
  EXPECT_EQ(degraded.stats.delivered_bps, 0.0);

  // A pure derate (all links up, half capacity) keeps every route but
  // doubles utilization at unchanged load.
  control::RouteRepairer derater(base_plan, demands.to_demands(), {}, direct);
  std::vector<control::LinkDelta> derate;
  for (std::size_t i = 0; i < base_plan.links.size(); ++i) {
    derate.push_back({i, true, 0.5});
  }
  (void)derater.apply(derate);
  const auto derated_paths = derater.traffic_paths();
  const auto derated_factors = derater.capacity_factors();
  options.paths = &derated_paths;
  options.capacity_factor = &derated_factors;
  const auto derated = model->run(demands, options);
  EXPECT_NEAR(derated.stats.max_link_utilization,
              2.0 * intact.stats.max_link_utilization, 1e-9);

  // The seam is fluid-only: the packet backend must reject overrides.
  const auto packet = make_traffic_model(TrafficBackend::Packet, input, plan);
  EXPECT_THROW((void)packet->run(demands, options), cisp::Error);
}

TEST(ControlSeam, RejectsStaleOrMalformedOverrides) {
  // The raw pointers in TrafficRunOptions are lifetime hazards: a paths
  // vector pinned against an older plan, or a factor vector of the wrong
  // length, used to walk straight into unchecked graph-edge indexing (UB).
  // Every malformed override must fail with cisp::Error at run entry.
  const auto input = seam_input();
  const auto plan = seam_plan();
  std::vector<std::vector<double>> traffic(4, std::vector<double>(4, 1.0));
  for (int i = 0; i < 4; ++i) traffic[i][i] = 0.0;
  const auto demands = flow::DemandMatrix::from_traffic(traffic, 1.0, 0.1);
  const LinkPlan base_plan = plan_links(input, plan, {});
  const auto direct = [&](std::uint32_t s, std::uint32_t t) {
    return input.geodesic_km(s, t);
  };
  control::RouteRepairer repairer(base_plan, demands.to_demands(), {}, direct);
  const auto good_paths = repairer.traffic_paths();
  const auto good_factors = repairer.capacity_factors();

  const auto model = make_traffic_model(TrafficBackend::Flow, input, plan);
  TrafficRunOptions options;
  options.plan = &base_plan;
  options.paths = &good_paths;
  options.capacity_factor = &good_factors;
  EXPECT_NO_THROW((void)model->run(demands, options));

  {
    // One path per demand pair, no more, no fewer.
    auto too_few = good_paths;
    too_few.pop_back();
    TrafficRunOptions bad = options;
    bad.paths = &too_few;
    EXPECT_THROW((void)model->run(demands, bad), cisp::Error);
  }
  {
    // Endpoints must match the pair the path is for.
    auto wrong_ends = good_paths;
    wrong_ends.front().nodes.front() =
        wrong_ends.front().nodes.front() == 2 ? 3 : 2;
    TrafficRunOptions bad = options;
    bad.paths = &wrong_ends;
    EXPECT_THROW((void)model->run(demands, bad), cisp::Error);
  }
  {
    // A pinned edge id beyond the run plan's edge space (the classic
    // stale-paths symptom after the plan shrinks).
    auto out_of_range = good_paths;
    ASSERT_FALSE(out_of_range.front().edges.empty());
    out_of_range.front().edges.front() = 1000000;
    TrafficRunOptions bad = options;
    bad.paths = &out_of_range;
    EXPECT_THROW((void)model->run(demands, bad), cisp::Error);
  }
  {
    // An in-range edge that does not connect the path's consecutive
    // nodes: pinned against a different plan's edge numbering.
    const TopologyView topo = view_from_plan(base_plan);
    auto stale = good_paths;
    ASSERT_FALSE(stale.front().edges.empty());
    const auto want_from = stale.front().nodes[0];
    bool tampered = false;
    for (graphs::EdgeId e = 0; e < topo.view.edge_to_link.size(); ++e) {
      const auto& edge = topo.view.latency_graph.edge(e);
      if (edge.from != want_from) {
        stale.front().edges.front() = e;
        tampered = true;
        break;
      }
    }
    ASSERT_TRUE(tampered);
    TrafficRunOptions bad = options;
    bad.paths = &stale;
    EXPECT_THROW((void)model->run(demands, bad), cisp::Error);
  }
  {
    // Capacity factors: one per duplex link, each in [0, 1].
    std::vector<double> short_factors(base_plan.links.size() - 1, 1.0);
    TrafficRunOptions bad = options;
    bad.capacity_factor = &short_factors;
    EXPECT_THROW((void)model->run(demands, bad), cisp::Error);

    auto over = good_factors;
    over.front() = 1.5;
    bad = options;
    bad.capacity_factor = &over;
    EXPECT_THROW((void)model->run(demands, bad), cisp::Error);

    auto negative = good_factors;
    negative.front() = -0.25;
    bad = options;
    bad.capacity_factor = &negative;
    EXPECT_THROW((void)model->run(demands, bad), cisp::Error);
  }
}

TEST(ControlObs, RepairCountersAccumulateWhenEnabled) {
  obs::reset_metrics();
  obs::set_metrics_enabled(true);
  const Fixture f = square_fixture();
  control::RouteRepairer repairer(f.plan, f.demands, {}, f.direct_km());
  (void)repairer.apply({control::LinkDelta{0, false}});
  obs::set_metrics_enabled(false);
  EXPECT_GE(obs::counter("control.repair.batches").value(), 1u);
  EXPECT_GE(obs::counter("control.repair.touched_pairs").value(), 1u);
  obs::reset_metrics();
}

}  // namespace
}  // namespace cisp::net
