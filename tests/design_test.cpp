// Unit and property tests for the design core (§3.2): the stretch
// evaluator, the greedy heuristic, the exact branch-and-bound (verified
// against exhaustive enumeration), and the LP-rounding baseline.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "design/exact.hpp"
#include "design/greedy.hpp"
#include "design/lp_rounding.hpp"
#include "design/problem.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace cisp::design {
namespace {

/// Random instance: n sites scattered on a plane (geodesic = Euclidean km),
/// fiber = geodesic * 1.9 effective, a candidate MW link per pair with
/// mw = geodesic * 1.03..1.15 and cost ~ distance / hop_km.
DesignInput random_instance(std::size_t n, std::uint64_t seed, double budget,
                            double traffic_skew = 1.0) {
  Rng rng(seed);
  std::vector<std::pair<double, double>> pts;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, 3000.0), rng.uniform(0.0, 1500.0)});
  }
  std::vector<std::vector<double>> geod(n, std::vector<double>(n, 0.0));
  std::vector<std::vector<double>> fiber(n, std::vector<double>(n, 0.0));
  std::vector<std::vector<double>> traffic(n, std::vector<double>(n, 0.0));
  std::vector<CandidateLink> candidates;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double dx = pts[i].first - pts[j].first;
      const double dy = pts[i].second - pts[j].second;
      const double d = std::max(30.0, std::sqrt(dx * dx + dy * dy));
      geod[i][j] = d;
      fiber[i][j] = d * 1.9;
      traffic[i][j] = std::pow(rng.uniform(0.05, 1.0), traffic_skew);
      if (i < j) {
        const double mw = d * rng.uniform(1.03, 1.15);
        candidates.push_back({i, j, mw, std::ceil(d / 80.0) + 1.0});
      }
    }
  }
  // Make the matrices symmetric (rng drew both directions independently).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      traffic[j][i] = traffic[i][j];
      fiber[j][i] = fiber[i][j];
      geod[j][i] = geod[i][j];
    }
  }
  return DesignInput(std::move(geod), std::move(fiber), std::move(traffic),
                     std::move(candidates), budget);
}

/// Exhaustive optimum over all candidate subsets within budget.
Topology brute_force(const DesignInput& input) {
  const auto& cands = input.candidates();
  CISP_REQUIRE(cands.size() <= 20, "brute force limited to 20 candidates");
  Topology best = StretchEvaluator::evaluate(input, {});
  for (unsigned mask = 1; mask < (1u << cands.size()); ++mask) {
    double cost = 0.0;
    std::vector<std::size_t> links;
    for (std::size_t l = 0; l < cands.size(); ++l) {
      if (mask & (1u << l)) {
        cost += cands[l].cost_towers;
        links.push_back(l);
      }
    }
    if (cost > input.budget_towers()) continue;
    const Topology t = StretchEvaluator::evaluate(input, std::move(links));
    if (t.mean_stretch < best.mean_stretch) best = t;
  }
  return best;
}

TEST(DesignInput, ValidatesMatrices) {
  EXPECT_THROW(DesignInput({{0.0}}, {{0.0}}, {{0.0}}, {}, 10.0), Error);
  // Fiber below geodesic must be rejected.
  EXPECT_THROW(DesignInput({{0, 100}, {100, 0}}, {{0, 90}, {90, 0}},
                           {{0, 1}, {1, 0}}, {}, 10.0),
               Error);
  // Zero traffic everywhere must be rejected.
  EXPECT_THROW(DesignInput({{0, 100}, {100, 0}}, {{0, 190}, {190, 0}},
                           {{0, 0}, {0, 0}}, {}, 10.0),
               Error);
}

TEST(DesignInput, PruneDropsMwSlowerThanFiber) {
  std::vector<CandidateLink> cands = {
      {0, 1, 120.0, 2.0},   // useful: 120 < fiber 190
      {0, 1, 200.0, 2.0},   // dominated: 200 >= 190
  };
  DesignInput input({{0, 100}, {100, 0}}, {{0, 190}, {190, 0}},
                    {{0, 1}, {1, 0}}, std::move(cands), 10.0);
  EXPECT_EQ(input.prune_dominated_candidates(), 1u);
  ASSERT_EQ(input.candidates().size(), 1u);
  EXPECT_DOUBLE_EQ(input.candidates()[0].mw_km, 120.0);
}

TEST(StretchEvaluator, FiberOnlyStretchMatchesInflation) {
  const auto input = random_instance(6, 1, 100.0);
  StretchEvaluator eval(input);
  // Fiber effective = 1.9 * geodesic everywhere in this instance, but
  // multi-hop fiber routes through intermediate sites can be shorter.
  EXPECT_LE(eval.mean_stretch(), 1.9 + 1e-9);
  EXPECT_GT(eval.mean_stretch(), 1.3);
}

TEST(StretchEvaluator, AddLinkReducesPairStretch) {
  const auto input = random_instance(6, 2, 100.0);
  StretchEvaluator eval(input);
  const auto& c = input.candidates()[0];
  const double before = eval.pair_stretch(c.site_a, c.site_b);
  eval.add_link(0);
  const double after = eval.pair_stretch(c.site_a, c.site_b);
  EXPECT_LT(after, before);
  EXPECT_NEAR(after, c.mw_km / input.geodesic_km(c.site_a, c.site_b), 1e-12);
}

TEST(StretchEvaluator, BenefitMatchesActualImprovementProperty) {
  const auto input = random_instance(7, 3, 100.0);
  StretchEvaluator eval(input);
  eval.add_link(2);
  for (std::size_t l = 0; l < input.candidates().size(); l += 3) {
    const double predicted = eval.benefit_of(l) / input.total_traffic();
    StretchEvaluator copy = eval;
    const double before = copy.mean_stretch();
    copy.add_link(l);
    const double actual = before - copy.mean_stretch();
    EXPECT_NEAR(predicted, actual, 1e-9) << "link " << l;
  }
}

TEST(StretchEvaluator, DistancesRemainMetricProperty) {
  const auto input = random_instance(8, 4, 60.0);
  StretchEvaluator eval(input);
  for (std::size_t l = 0; l < std::min<std::size_t>(6, input.candidates().size());
       ++l) {
    eval.add_link(l);
  }
  const std::size_t n = input.site_count();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        EXPECT_LE(eval.effective_km(i, k),
                  eval.effective_km(i, j) + eval.effective_km(j, k) + 1e-9);
      }
    }
  }
}

TEST(StretchEvaluator, EvaluateRespectsBudgetAccounting) {
  const auto input = random_instance(5, 5, 100.0);
  const Topology t = StretchEvaluator::evaluate(input, {0, 1});
  EXPECT_DOUBLE_EQ(t.cost_towers, input.candidates()[0].cost_towers +
                                      input.candidates()[1].cost_towers);
  EXPECT_GT(t.mean_stretch, 1.0);
}

TEST(Greedy, RespectsBudget) {
  for (std::uint64_t seed = 10; seed < 15; ++seed) {
    const auto input = random_instance(8, seed, 40.0);
    const Topology t = solve_greedy(input);
    EXPECT_LE(t.cost_towers, input.budget_towers() + 1e-9);
    // Greedy must never be worse than building nothing.
    const Topology nothing = StretchEvaluator::evaluate(input, {});
    EXPECT_LE(t.mean_stretch, nothing.mean_stretch + 1e-12);
  }
}

TEST(Greedy, ZeroBudgetBuildsNothing) {
  const auto input = random_instance(6, 21, 0.0);
  const Topology t = solve_greedy(input);
  EXPECT_TRUE(t.links.empty());
}

TEST(Greedy, LargeBudgetApproachesAllUsefulLinks) {
  const auto input = random_instance(6, 22, 1e9);
  const Topology t = solve_greedy(input);
  // With unlimited budget every pair should end up near its best MW
  // stretch (1.03-1.15 by construction).
  EXPECT_LT(t.mean_stretch, 1.16);
}

TEST(Exact, MatchesBruteForceOnSmallInstances) {
  for (std::uint64_t seed = 30; seed < 36; ++seed) {
    auto input = random_instance(5, seed, 25.0);
    input.prune_dominated_candidates();
    if (input.candidates().size() > 18) continue;  // keep brute force fast
    const Topology reference = brute_force(input);
    const ExactResult exact = solve_exact(input);
    ASSERT_TRUE(exact.proven_optimal) << "seed " << seed;
    EXPECT_NEAR(exact.topology.mean_stretch, reference.mean_stretch, 1e-9)
        << "seed " << seed;
    EXPECT_LE(exact.topology.cost_towers, input.budget_towers() + 1e-9);
  }
}

TEST(Exact, GreedyMatchesExactOnSmallInstances) {
  // The paper's Fig. 2(b): the heuristic matches the ILP optimum to two
  // decimal places on instances the exact solver can handle.
  int matches = 0;
  int total = 0;
  for (std::uint64_t seed = 40; seed < 48; ++seed) {
    auto input = random_instance(6, seed, 30.0);
    input.prune_dominated_candidates();
    const ExactResult exact = solve_exact(input);
    if (!exact.proven_optimal) continue;
    const Topology heuristic = solve_cisp(input);
    ++total;
    EXPECT_GE(heuristic.mean_stretch, exact.topology.mean_stretch - 1e-9);
    if (std::round(heuristic.mean_stretch * 100.0) ==
        std::round(exact.topology.mean_stretch * 100.0)) {
      ++matches;
    }
  }
  ASSERT_GT(total, 4);
  // All instances should match at 2-decimal precision.
  EXPECT_EQ(matches, total);
}

TEST(Exact, PoolRestrictionHonored) {
  auto input = random_instance(6, 50, 30.0);
  input.prune_dominated_candidates();
  ExactOptions options;
  options.candidate_pool = {0, 1, 2};
  const ExactResult r = solve_exact(input, options);
  for (const std::size_t l : r.topology.links) {
    EXPECT_LT(l, 3u);
  }
}

TEST(Exact, TimeLimitAborts) {
  auto input = random_instance(10, 51, 80.0, 2.0);
  input.prune_dominated_candidates();
  ExactOptions options;
  options.max_nodes = 50;  // guaranteed too few
  const ExactResult r = solve_exact(input, options);
  EXPECT_FALSE(r.proven_optimal);
  EXPECT_LE(r.topology.cost_towers, input.budget_towers() + 1e-9);
}

TEST(LpRounding, FeasibleAndNeverBeatsExact) {
  for (std::uint64_t seed = 60; seed < 64; ++seed) {
    auto input = random_instance(5, seed, 25.0);
    input.prune_dominated_candidates();
    const ExactResult exact = solve_exact(input);
    ASSERT_TRUE(exact.proven_optimal);
    const LpRoundingResult lp = solve_lp_rounding(input);
    ASSERT_TRUE(lp.solved) << "seed " << seed;
    EXPECT_LE(lp.topology.cost_towers, input.budget_towers() + 1e-9);
    // Rounding a relaxation cannot beat the true optimum.
    EXPECT_GE(lp.topology.mean_stretch, exact.topology.mean_stretch - 1e-9);
  }
}

TEST(LpRounding, ReportsProblemSize) {
  auto input = random_instance(5, 70, 25.0);
  input.prune_dominated_candidates();
  const LpRoundingResult lp = solve_lp_rounding(input);
  EXPECT_GT(lp.lp_variables, input.candidates().size());
  EXPECT_GT(lp.lp_constraints, 0u);
}

TEST(LpRounding, RejectsSlackBelowOne) {
  auto input = random_instance(4, 71, 25.0);
  LpRoundingOptions options;
  options.elimination_slack = 0.5;
  EXPECT_THROW(solve_lp_rounding(input, options), Error);
}

}  // namespace
}  // namespace cisp::design
