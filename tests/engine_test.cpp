// Tests for the parallel experiment engine: executor task execution and
// exception propagation, grid expansion and per-task seed determinism,
// sweep bit-identity across thread counts, and order-independent
// collector merging.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "engine/collector.hpp"
#include "engine/executor.hpp"
#include "engine/experiment.hpp"
#include "engine/sweep.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace cisp::engine {
namespace {

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

TEST(Executor, RunsSubmittedTasksAndReturnsValues) {
  Executor pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(Executor, ZeroMeansHardwareConcurrency) {
  Executor pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
  EXPECT_EQ(pool.thread_count(), default_thread_count());
}

TEST(Executor, ExceptionPropagatesThroughFutureWithoutDeadlock) {
  Executor pool(2);
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  auto good = pool.submit([] { return 7; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing task: later tasks still run.
  EXPECT_EQ(good.get(), 7);
  auto after = pool.submit([] { return 11; });
  EXPECT_EQ(after.get(), 11);
}

TEST(Executor, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    Executor pool(1);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&ran] { ++ran; });
    }
  }  // destructor joins after the queue drains
  EXPECT_EQ(ran.load(), 50);
}

// ---------------------------------------------------------------------------
// Grid
// ---------------------------------------------------------------------------

TEST(Grid, SizeIsProductOfAxesTimesReplicates) {
  Grid grid;
  grid.axis("a", {1.0, 2.0, 3.0}).axis("b", {10.0, 20.0}).replicates(4);
  EXPECT_EQ(grid.size(), 3u * 2u * 4u);
}

TEST(Grid, PointExpansionCoversEveryCombinationOnce) {
  Grid grid;
  grid.axis("a", {1.0, 2.0, 3.0}).axis("b", {10.0, 20.0}).replicates(2);
  std::vector<int> seen(grid.size(), 0);
  for (std::size_t t = 0; t < grid.size(); ++t) {
    const Point p = grid.point(t);
    EXPECT_EQ(p.task_index(), t);
    const std::size_t key =
        (p.index("a") * 2 + p.index("b")) * 2 +
        static_cast<std::size_t>(p.replicate());
    ++seen[key];
    EXPECT_EQ(p.value("a"), grid.axes()[0].values[p.index("a")]);
    EXPECT_EQ(p.value("b"), grid.axes()[1].values[p.index("b")]);
  }
  for (const int count : seen) EXPECT_EQ(count, 1);
}

TEST(Grid, RejectsBadAxes) {
  Grid grid;
  grid.axis("a", {1.0});
  EXPECT_THROW(grid.axis("a", {2.0}), Error);   // duplicate name
  EXPECT_THROW(grid.axis("", {2.0}), Error);    // empty name
  EXPECT_THROW(grid.axis("b", {}), Error);      // empty values
  EXPECT_THROW(grid.replicates(0), Error);
  EXPECT_THROW(grid.point(grid.size()), Error); // out of range
  EXPECT_THROW(grid.point(0).value("nope"), Error);
}

TEST(Grid, PointSharesAxesOwnershipSoItOutlivesTheGrid) {
  // The historical hazard: Point stored a raw pointer into its Grid, so
  // `grid.point(i)` on a temporary dangled silently. Points now share
  // ownership of the axes.
  const Point p = [] {
    Grid grid;
    grid.axis("x", {1.0, 2.0, 3.0});
    return grid.point(2);
  }();
  EXPECT_EQ(p.value("x"), 3.0);
}

TEST(Grid, MutatingGridAfterPointIsCopyOnWrite) {
  Grid grid;
  grid.axis("x", {1.0});
  const Point p = grid.point(0);
  grid.axis("y", {5.0, 6.0});  // must not change what p observes
  EXPECT_EQ(p.value("x"), 1.0);
  EXPECT_THROW(p.value("y"), Error);
  EXPECT_EQ(grid.size(), 2u);
}

TEST(Grid, TaskSeedsAreStableAndDistinct) {
  Grid a;
  a.index_axis("i", 64).base_seed(42);
  Grid b;
  b.index_axis("i", 64).base_seed(42);
  std::vector<std::uint64_t> seeds;
  for (std::size_t t = 0; t < a.size(); ++t) {
    EXPECT_EQ(a.task_seed(t), b.task_seed(t));  // stable across instances
    seeds.push_back(a.task_seed(t));
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
  Grid c;
  c.index_axis("i", 64).base_seed(43);
  EXPECT_NE(a.task_seed(0), c.task_seed(0));  // base seed matters
}

// ---------------------------------------------------------------------------
// run_sweep
// ---------------------------------------------------------------------------

/// A stochastic task: result depends only on the per-task seed.
double monte_carlo_task(const Point& point) {
  Rng rng(point.seed());
  double acc = point.value("x");
  for (int i = 0; i < 1000; ++i) acc += rng.normal();
  return acc;
}

TEST(Sweep, SameSeedDifferentThreadCountsBitIdentical) {
  Grid grid;
  grid.axis("x", {0.0, 1.0, 2.0, 3.0, 4.0}).replicates(8).base_seed(7);
  const auto t1 = run_sweep(grid, monte_carlo_task, {.threads = 1});
  const auto t2 = run_sweep(grid, monte_carlo_task, {.threads = 2});
  const auto t8 = run_sweep(grid, monte_carlo_task, {.threads = 8});
  EXPECT_EQ(t1.per_task, t2.per_task);
  EXPECT_EQ(t1.per_task, t8.per_task);
}

TEST(Sweep, ChunkedSubmissionMatchesUnchunkedBitIdentical) {
  // Chunking only groups adjacent task indices into one pool submission
  // (the lever for skewed task costs); results are keyed by task index and
  // must not move. Cover a chunk that divides the grid, one that doesn't,
  // and one bigger than the whole grid.
  Grid grid;
  grid.axis("x", {0.0, 1.0, 2.0, 3.0, 4.0}).replicates(8).base_seed(7);
  const auto plain = run_sweep(grid, monte_carlo_task, {.threads = 2});
  for (const std::size_t chunk : {2u, 7u, 1000u}) {
    const auto chunked = run_sweep(grid, monte_carlo_task,
                                   {.threads = 2, .chunk = chunk});
    EXPECT_EQ(plain.per_task, chunked.per_task) << "chunk=" << chunk;
  }
}

TEST(Executor, ParallelForCoversEveryIndexOnceAtAnyGrain) {
  for (const std::size_t grain : {0u, 1u, 3u, 100u}) {
    Executor executor(3);
    std::vector<int> hits(37, 0);
    parallel_for(executor, hits.size(),
                 [&](std::size_t i) { ++hits[i]; }, grain);
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i], 1) << "grain=" << grain << " i=" << i;
    }
  }
}

TEST(Executor, ParallelForPropagatesTaskExceptions) {
  Executor executor(2);
  std::vector<int> hits(16, 0);
  EXPECT_THROW(
      parallel_for(executor, hits.size(),
                   [&](std::size_t i) {
                     if (i == 5) throw std::runtime_error("boom");
                     ++hits[i];
                   },
                   /*grain=*/1),
      std::runtime_error);
  EXPECT_EQ(hits[4], 1);  // other chunks still ran
}

TEST(Sweep, ReplicatesDiffer) {
  Grid grid;
  grid.axis("x", {0.0}).replicates(2).base_seed(7);
  const auto result = run_sweep(grid, monte_carlo_task, {.threads = 2});
  EXPECT_NE(result.at(0), result.at(1));  // distinct per-replicate seeds
}

TEST(Sweep, BoolResultsAreRaceFreeAndBitIdentical) {
  // R = bool would race through std::vector<bool> bit-packing if results
  // were written directly into the output vector; per-slot optionals keep
  // every write on a distinct object.
  Grid grid;
  grid.index_axis("i", 257).base_seed(5);
  const auto predicate = [](const Point& point) {
    Rng rng(point.seed());
    return rng.uniform() < 0.5;
  };
  const auto t1 = run_sweep(grid, predicate, {.threads = 1});
  const auto t8 = run_sweep(grid, predicate, {.threads = 8});
  EXPECT_EQ(t1.per_task, t8.per_task);
}

TEST(Sweep, ResultsNeedOnlyMoveConstruction) {
  struct NoDefault {
    explicit NoDefault(std::size_t v) : value(v) {}
    std::size_t value;
  };
  Grid grid;
  grid.index_axis("i", 16);
  const auto result = run_sweep(
      grid, [](const Point& point) { return NoDefault(point.task_index()); },
      {.threads = 4});
  for (std::size_t t = 0; t < grid.size(); ++t) {
    EXPECT_EQ(result.at(t).value, t);
  }
}

TEST(Sweep, ThrowingTaskPropagatesWithoutDeadlock) {
  Grid grid;
  grid.index_axis("i", 32);
  std::atomic<int> completed{0};
  const auto run = [&] {
    (void)run_sweep(
        grid,
        [&](const Point& point) -> int {
          if (point.task_index() == 5) throw Error("task 5 exploded");
          ++completed;
          return 0;
        },
        {.threads = 4});
  };
  EXPECT_THROW(run(), Error);
  // Every non-throwing task still ran: the pool drained cleanly.
  EXPECT_EQ(completed.load(), 31);
}

TEST(Sweep, FirstErrorByTaskIndexWins) {
  Grid grid;
  grid.index_axis("i", 16);
  try {
    (void)run_sweep(
        grid,
        [](const Point& point) -> int {
          if (point.task_index() == 3) throw Error("three");
          if (point.task_index() == 12) throw Error("twelve");
          return 0;
        },
        {.threads = 8});
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("three"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Collectors
// ---------------------------------------------------------------------------

TEST(Collector, MergeIsOrderIndependent) {
  // Simulate two completion orders writing the same per-task shards.
  SamplesCollector forward(10);
  for (std::size_t t = 0; t < 10; ++t) {
    forward.add(t, static_cast<double>(t));
    forward.add(t, static_cast<double>(t) * 0.5);
  }
  SamplesCollector reverse(10);
  for (std::size_t t = 10; t-- > 0;) {
    reverse.add(t, static_cast<double>(t));
    reverse.add(t, static_cast<double>(t) * 0.5);
  }
  EXPECT_EQ(forward.merged().values(), reverse.merged().values());
  EXPECT_EQ(forward.merged_sum(), reverse.merged_sum());
  EXPECT_EQ(forward.total_count(), 20u);
}

TEST(Collector, ConcurrentSlotWritesMergeDeterministically) {
  const std::size_t tasks = 64;
  Grid grid;
  grid.index_axis("i", tasks).base_seed(3);
  auto run_once = [&](std::size_t threads) {
    SamplesCollector collector(tasks);
    (void)run_sweep(
        grid,
        [&](const Point& point) {
          Rng rng(point.seed());
          for (int k = 0; k < 100; ++k) {
            collector.add(point.task_index(), rng.uniform());
          }
          return 0;
        },
        {.threads = threads});
    return collector.merged();
  };
  EXPECT_EQ(run_once(1).values(), run_once(8).values());
}

TEST(Collector, SamplesBankMergesPerSeries) {
  SamplesBank bank(/*num_series=*/3, /*num_tasks=*/4);
  for (std::size_t series = 0; series < 3; ++series) {
    for (std::size_t t = 0; t < 4; ++t) {
      bank.add(series, t, static_cast<double>(series * 10 + t));
    }
  }
  for (std::size_t series = 0; series < 3; ++series) {
    const auto merged = bank.merged(series);
    ASSERT_EQ(merged.count(), 4u);
    EXPECT_EQ(merged.values().front(), static_cast<double>(series * 10));
    EXPECT_EQ(merged.values().back(), static_cast<double>(series * 10 + 3));
  }
  EXPECT_THROW(bank.add(3, 0, 1.0), Error);
  EXPECT_THROW(bank.merged(3), Error);
}

TEST(Collector, SlotCollectorFoldsInIndexOrder) {
  SlotCollector<std::vector<int>> collector(3);
  collector.slot(2).push_back(30);
  collector.slot(0).push_back(10);
  collector.slot(1).push_back(20);
  const auto merged = collector.merge(
      std::vector<int>{},
      [](std::vector<int>& acc, const std::vector<int>& s) {
        acc.insert(acc.end(), s.begin(), s.end());
      });
  EXPECT_EQ(merged, (std::vector<int>{10, 20, 30}));
}

// ---------------------------------------------------------------------------
// Experiment registry
// ---------------------------------------------------------------------------

TEST(Experiments, RegistryRunsByNameAndLists) {
  ExperimentRegistry registry;
  int runs = 0;
  registry.add({.name = "unit_exp_b", .description = "second"},
               [&](const ExperimentContext&) { return ResultSet{}; });
  registry.add({.name = "unit_exp_a", .description = "first"},
               [&](const ExperimentContext& ctx) {
                 EXPECT_EQ(ctx.threads, 2u);
                 EXPECT_TRUE(ctx.fast);
                 EXPECT_EQ(ctx.params.real("x", 1.5), 2.5);
                 ++runs;
                 ResultSet set;
                 set.add_table("t", "title", {"c"}).row({7});
                 return set;
               });
  EXPECT_TRUE(registry.contains("unit_exp_a"));
  EXPECT_FALSE(registry.contains("missing"));

  ExperimentContext ctx;
  ctx.threads = 2;
  ctx.fast = true;
  ctx.params.set("x", "2.5");
  const ResultSet result = registry.run("unit_exp_a", ctx);
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(result.table("t").at(0, 0).as_int(), 7);

  const auto infos = registry.list();
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_EQ(infos[0].name, "unit_exp_a");  // sorted
  EXPECT_EQ(infos[1].name, "unit_exp_b");

  EXPECT_THROW((void)registry.run("missing", ctx), Error);
}

TEST(Experiments, DuplicateRegistrationSurfacesAtLookupNotAdd) {
  ExperimentRegistry registry;
  registry.add({.name = "dup_exp", .description = "first registration"},
               [](const ExperimentContext&) { return ResultSet{}; });
  // Registering the same name again must NOT throw: during static init a
  // throw would be a silent std::terminate.
  registry.add({.name = "dup_exp", .description = "second registration"},
               [](const ExperimentContext&) { return ResultSet{}; });
  try {
    (void)registry.list();
    FAIL() << "expected duplicate diagnosis at first lookup";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("dup_exp"), std::string::npos);
    EXPECT_NE(what.find("first registration"), std::string::npos);
    EXPECT_NE(what.find("second registration"), std::string::npos);
  }
  EXPECT_THROW((void)registry.contains("dup_exp"), Error);
}

TEST(Experiments, GlobMatching) {
  EXPECT_TRUE(glob_match("fig04*", "fig04a_budget_sweep"));
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("fig0?_weather", "fig07_weather"));
  EXPECT_TRUE(glob_match("exact", "exact"));
  EXPECT_FALSE(glob_match("fig04*", "fig05_perturbation"));
  EXPECT_FALSE(glob_match("fig0?_weather", "fig07_weathers"));
  EXPECT_FALSE(glob_match("", "x"));
  EXPECT_TRUE(glob_match("*ablation*", "the_ablation_suite"));
}

TEST(Experiments, BenchExperimentsSelfRegister) {
  // The bench binaries register into the process-wide instance; within the
  // test binary nothing is registered, but the instance must exist and be
  // stable across calls.
  EXPECT_EQ(&ExperimentRegistry::instance(), &ExperimentRegistry::instance());
}

}  // namespace
}  // namespace cisp::engine
