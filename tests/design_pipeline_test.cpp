// Integration tests for the full Step 1 -> 2 -> 3 pipeline on a fast
// (coarse) US scenario: hop feasibility, link engineering, topology design,
// capacity planning and the cost model, end to end.

#include <gtest/gtest.h>

#include <algorithm>

#include "design/cost_model.hpp"
#include "design/greedy.hpp"
#include "design/scenario.hpp"
#include "geo/geodesic.hpp"
#include "util/stats.hpp"
#include "util/error.hpp"

namespace cisp::design {
namespace {

/// One coarse scenario shared by all tests in this file (expensive build).
const Scenario& fast_us() {
  static const Scenario scenario = [] {
    ScenarioOptions options;
    options.fast = true;
    options.top_cities = 60;
    return build_us_scenario(options);
  }();
  return scenario;
}

TEST(Pipeline, ScenarioBasics) {
  const Scenario& s = fast_us();
  EXPECT_EQ(s.name, "us");
  EXPECT_GE(s.centers.size(), 30u);
  EXPECT_GT(s.tower_graph.towers.size(), 800u);
  EXPECT_GT(s.tower_graph.feasible_hops, s.tower_graph.towers.size() / 2);
}

TEST(Pipeline, HopsRespectRangeAndAreSymmetric) {
  const auto& g = fast_us().tower_graph.graph;
  const auto& towers = fast_us().tower_graph.towers;
  for (std::size_t e = 0; e < std::min<std::size_t>(g.edge_count(), 5000); ++e) {
    const auto& edge = g.edge(static_cast<graphs::EdgeId>(e));
    EXPECT_LE(edge.weight, fast_us().options.hop.max_range_km + 1e-9);
    EXPECT_NEAR(edge.weight,
                geo::distance_km(towers[edge.from].pos, towers[edge.to].pos),
                1e-9);
  }
  // Both arcs present (add_undirected invariant: consecutive ids).
  for (std::size_t e = 0; e + 1 < std::min<std::size_t>(g.edge_count(), 2000);
       e += 2) {
    const auto& fwd = g.edge(static_cast<graphs::EdgeId>(e));
    const auto& rev = g.edge(static_cast<graphs::EdgeId>(e + 1));
    EXPECT_EQ(fwd.from, rev.to);
    EXPECT_EQ(fwd.to, rev.from);
  }
}

TEST(Pipeline, CityCityProblemShape) {
  const SiteProblem problem = city_city_problem(fast_us(), 800.0, 25);
  EXPECT_EQ(problem.sites.size(), 25u);
  EXPECT_EQ(problem.links.size(), 25u * 24u / 2u);
  // Most site pairs should have a feasible MW route on the tower graph.
  std::size_t feasible = 0;
  for (const auto& l : problem.links) feasible += l.feasible;
  EXPECT_GT(feasible, problem.links.size() / 2);
  // Engineered MW paths are longer than the geodesic but (statistically)
  // not wildly so. The coarse fast-mode registry leaves a few circuitous
  // outliers across the Rockies; the full registry is much tighter (the
  // Fig. 3 bench validates ~1.05x there).
  Samples ratio;
  for (const auto& l : problem.links) {
    if (!l.feasible) continue;
    const double geodesic =
        geo::distance_km(problem.sites[l.site_a], problem.sites[l.site_b]);
    EXPECT_GE(l.mw_km, geodesic - 1e-6);
    ratio.add(l.mw_km / geodesic);
  }
  EXPECT_LT(ratio.median(), 1.5);
  EXPECT_LT(ratio.percentile(90), 2.6);
}

TEST(Pipeline, GreedyDesignReducesStretchWithinBudget) {
  const SiteProblem problem = city_city_problem(fast_us(), 600.0, 25);
  const Topology fiber_only = StretchEvaluator::evaluate(problem.input, {});
  const Topology designed = solve_greedy(problem.input);
  EXPECT_LE(designed.cost_towers, 600.0 + 1e-9);
  EXPECT_LT(designed.mean_stretch, fiber_only.mean_stretch - 0.1);
  // Fiber-only stretch should be near the paper's ~1.9x.
  EXPECT_GT(fiber_only.mean_stretch, 1.6);
  EXPECT_LT(fiber_only.mean_stretch, 2.25);
}

TEST(Pipeline, MoreBudgetNeverHurts) {
  const Scenario& s = fast_us();
  double previous = 1e9;
  for (const double budget : {100.0, 300.0, 600.0, 1200.0}) {
    const SiteProblem problem = city_city_problem(s, budget, 20);
    const Topology t = solve_greedy(problem.input);
    EXPECT_LE(t.mean_stretch, previous + 1e-6) << "budget " << budget;
    previous = t.mean_stretch;
  }
}

TEST(Pipeline, CapacityPlanAccountsDemandAndTowers) {
  const SiteProblem problem = city_city_problem(fast_us(), 600.0, 25);
  const Topology topo = solve_greedy(problem.input);
  ASSERT_FALSE(topo.links.empty());
  CapacityParams params;
  params.aggregate_gbps = 100.0;
  const CapacityPlan plan = plan_capacity(
      problem.input, topo, problem.links, fast_us().tower_graph.towers, params);
  EXPECT_EQ(plan.links.size(), topo.links.size());
  double mw_demand = 0.0;
  for (const auto& l : plan.links) {
    EXPECT_GE(l.series, 1);
    // k series must cover the demand with the k^2 rule.
    EXPECT_GE(static_cast<double>(l.series) * l.series + 1e-9,
              l.demand_gbps / params.series_unit_gbps);
    mw_demand = std::max(mw_demand, l.demand_gbps);
  }
  EXPECT_GT(plan.routed_on_mw_gbps, 0.0);
  EXPECT_LE(plan.routed_on_mw_gbps, params.aggregate_gbps + 1e-6);
  EXPECT_GT(plan.base_hops, 0u);
  EXPECT_GE(plan.installed_hop_series, plan.base_hops);
  // Hop categories partition the hops.
  std::size_t hop_total = 0;
  for (const auto& [extra, count] : plan.hops_by_extra) hop_total += count;
  EXPECT_EQ(hop_total, plan.base_hops);
}

TEST(Pipeline, HigherAggregateNeedsMoreTowers) {
  const SiteProblem problem = city_city_problem(fast_us(), 600.0, 25);
  const Topology topo = solve_greedy(problem.input);
  CapacityParams low;
  low.aggregate_gbps = 20.0;
  CapacityParams high;
  high.aggregate_gbps = 500.0;
  const auto plan_low = plan_capacity(problem.input, topo, problem.links,
                                      fast_us().tower_graph.towers, low);
  const auto plan_high = plan_capacity(problem.input, topo, problem.links,
                                       fast_us().tower_graph.towers, high);
  EXPECT_GE(plan_high.installed_hop_series, plan_low.installed_hop_series);
  EXPECT_GE(plan_high.new_towers, plan_low.new_towers);
}

TEST(Pipeline, CostModelScalesAndAmortizes) {
  const SiteProblem problem = city_city_problem(fast_us(), 600.0, 25);
  const Topology topo = solve_greedy(problem.input);
  CapacityParams params;
  params.aggregate_gbps = 100.0;
  const auto plan = plan_capacity(problem.input, topo, problem.links,
                                  fast_us().tower_graph.towers, params);
  const CostBreakdown cost = cost_of(plan);
  EXPECT_GT(cost.total_usd, 0.0);
  EXPECT_NEAR(cost.total_usd,
              cost.install_usd + cost.new_tower_usd + cost.rent_usd, 1e-6);
  // 100 Gbps over 5 years is ~1.97e9 GB.
  EXPECT_NEAR(cost.carried_gb, 1.971e9, 1e7);
  // Cost per GB should land in the paper's order of magnitude ($0.1-$5).
  EXPECT_GT(cost.usd_per_gb, 0.05);
  EXPECT_LT(cost.usd_per_gb, 5.0);
  // Cost per GB falls with scale (Fig. 4(c) shape).
  CapacityParams big;
  big.aggregate_gbps = 500.0;
  const auto plan_big = plan_capacity(problem.input, topo, problem.links,
                                      fast_us().tower_graph.towers, big);
  EXPECT_LT(cost_of(plan_big).usd_per_gb, cost.usd_per_gb);
}

TEST(Pipeline, DcProblemsBuildAndSolve) {
  const SiteProblem dc = dc_dc_problem(fast_us(), 400.0);
  EXPECT_EQ(dc.sites.size(), 6u);
  const Topology t = solve_greedy(dc.input);
  EXPECT_LE(t.cost_towers, 400.0 + 1e-9);

  const SiteProblem cdc = city_dc_problem(fast_us(), 400.0, 15);
  EXPECT_EQ(cdc.sites.size(), 15u + 6u);
  const Topology t2 = solve_greedy(cdc.input);
  EXPECT_LE(t2.cost_towers, 400.0 + 1e-9);
}

TEST(Pipeline, MixedProblemBlendsTraffic) {
  const SiteProblem mixed = mixed_problem(fast_us(), 400.0, 4, 3, 3, 15);
  EXPECT_EQ(mixed.sites.size(), 21u);
  // DC-DC block present: traffic between the last 6 sites is positive.
  const auto& input = mixed.input;
  double dc_block = 0.0;
  for (std::size_t i = 15; i < 21; ++i) {
    for (std::size_t j = 15; j < 21; ++j) {
      if (i != j) dc_block += input.traffic(i, j);
    }
  }
  EXPECT_GT(dc_block, 0.0);
  const Topology t = solve_greedy(mixed.input);
  EXPECT_LE(t.cost_towers, 400.0 + 1e-9);
}

TEST(Pipeline, TowerDisjointPathsDegradeGracefully) {
  // Fig. 4(b)'s pattern: successive tower-disjoint paths get longer but
  // stay far below fiber inflation for a long transcontinental link.
  const Scenario& s = fast_us();
  const geo::LatLon chicago{41.88, -87.63};
  const geo::LatLon denver{39.74, -104.99};
  const auto lengths =
      tower_disjoint_path_lengths(s.tower_graph, chicago, denver, 8);
  ASSERT_GE(lengths.size(), 3u);
  const double geodesic = geo::distance_km(chicago, denver);
  for (std::size_t i = 0; i < lengths.size(); ++i) {
    EXPECT_GE(lengths[i], geodesic - 1e-6);
    if (i > 0) EXPECT_GE(lengths[i], lengths[i - 1] - 1e-6);
  }
  EXPECT_LT(lengths.front() / geodesic, 1.25);
}

TEST(Pipeline, MultiConfigSweepSharesProfiles) {
  // §6.5: tighter height fractions / ranges can only lose hops.
  const Scenario& s = fast_us();
  std::vector<HopParams> configs;
  HopParams base = s.options.hop;
  configs.push_back(base);
  HopParams restricted = base;
  restricted.usable_height_fraction = 0.45;
  configs.push_back(restricted);
  HopParams short_range = base;
  short_range.max_range_km = 60.0;
  configs.push_back(short_range);
  const auto graphs = build_tower_graphs_multi(
      *s.raster, s.tower_graph.towers, configs);
  ASSERT_EQ(graphs.size(), 3u);
  EXPECT_LE(graphs[1].feasible_hops, graphs[0].feasible_hops);
  EXPECT_LE(graphs[2].feasible_hops, graphs[0].feasible_hops);
  EXPECT_GT(graphs[1].feasible_hops, 0u);
}

}  // namespace
}  // namespace cisp::design
