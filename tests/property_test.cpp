// Parameterized property suites (TEST_P sweeps) cutting across modules:
// geometry invariants over seed families, RF physics monotonicity over
// parameter grids, solver correctness over random instance families, and
// TCP liveness over rate/size grids.

#include <gtest/gtest.h>

#include <cmath>

#include "design/exact.hpp"
#include "design/greedy.hpp"
#include "design/problem.hpp"
#include "geo/geodesic.hpp"
#include "lp/milp.hpp"
#include "net/node.hpp"
#include "net/tcp.hpp"
#include "rf/fresnel.hpp"
#include "rf/link_budget.hpp"
#include "rf/rain.hpp"
#include "util/rng.hpp"

namespace cisp {
namespace {

// ---------------------------------------------------------------------------
// Geodesic invariants over random seeds.
// ---------------------------------------------------------------------------

class GeodesicProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeodesicProperty, MidpointHalvesAndBearingAdvances) {
  Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    const geo::LatLon a{rng.uniform(-65.0, 65.0), rng.uniform(-179.0, 179.0)};
    const geo::LatLon b{rng.uniform(-65.0, 65.0), rng.uniform(-179.0, 179.0)};
    const double d = geo::distance_km(a, b);
    if (d < 1.0 || d > 15000.0) continue;
    const geo::LatLon mid = geo::interpolate(a, b, 0.5);
    EXPECT_NEAR(geo::distance_km(a, mid), d / 2.0, 1e-6);
    // Walking from a toward b by d must land on b.
    const geo::LatLon walked =
        geo::destination(a, geo::initial_bearing_deg(a, b), d);
    EXPECT_NEAR(geo::distance_km(walked, b), 0.0, 1.0);
  }
}

TEST_P(GeodesicProperty, SampledPathLengthMatchesDistance) {
  Rng rng(GetParam() ^ 0xFEED);
  for (int i = 0; i < 30; ++i) {
    const geo::LatLon a{rng.uniform(25.0, 49.0), rng.uniform(-124.0, -67.0)};
    const geo::LatLon b{rng.uniform(25.0, 49.0), rng.uniform(-124.0, -67.0)};
    const auto path = geo::sample_path(a, b, 25.0);
    double total = 0.0;
    for (std::size_t p = 1; p < path.size(); ++p) {
      total += geo::distance_km(path[p - 1], path[p]);
    }
    // Chords under-measure the arc by a vanishing amount at 25 km steps.
    EXPECT_NEAR(total, geo::distance_km(a, b),
                geo::distance_km(a, b) * 1e-4 + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeodesicProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// RF physics monotonicity over a (frequency, distance) grid.
// ---------------------------------------------------------------------------

class RfGridProperty
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(RfGridProperty, FresnelAndBulgeScaleCorrectly) {
  const auto [f_ghz, d_km] = GetParam();
  // Fresnel radius shrinks with frequency, grows with distance.
  EXPECT_LT(rf::fresnel_radius_m(d_km / 2, d_km / 2, f_ghz * 2.0),
            rf::fresnel_radius_m(d_km / 2, d_km / 2, f_ghz));
  EXPECT_GT(rf::fresnel_radius_m(d_km, d_km, f_ghz),
            rf::fresnel_radius_m(d_km / 2, d_km / 2, f_ghz));
  // Bulge is frequency-independent and quadratic in distance.
  const double bulge1 = rf::earth_bulge_m(d_km / 2, d_km / 2, 1.3);
  const double bulge2 = rf::earth_bulge_m(d_km, d_km, 1.3);
  EXPECT_NEAR(bulge2 / bulge1, 4.0, 1e-9);
}

TEST_P(RfGridProperty, RainAttenuationMonotoneInRateAndDistance) {
  const auto [f_ghz, d_km] = GetParam();
  double previous = 0.0;
  for (double rate = 5.0; rate <= 120.0; rate += 5.0) {
    const double a = rf::hop_rain_attenuation_db(d_km, rate, f_ghz);
    EXPECT_GT(a, previous);
    previous = a;
  }
  EXPECT_GT(rf::hop_rain_attenuation_db(d_km, 40.0, f_ghz),
            rf::hop_rain_attenuation_db(d_km / 2.0, 40.0, f_ghz));
}

INSTANTIATE_TEST_SUITE_P(
    FreqDistanceGrid, RfGridProperty,
    ::testing::Combine(::testing::Values(6.0, 11.0, 15.0, 18.0),
                       ::testing::Values(20.0, 50.0, 80.0, 100.0)));

// ---------------------------------------------------------------------------
// Design solver properties over a family of random instances.
// ---------------------------------------------------------------------------

design::DesignInput make_instance(std::size_t n, std::uint64_t seed,
                                  double budget) {
  Rng rng(seed);
  std::vector<std::pair<double, double>> pts;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, 4000.0), rng.uniform(0.0, 2000.0)});
  }
  std::vector<std::vector<double>> geod(n, std::vector<double>(n, 0.0));
  std::vector<std::vector<double>> traffic(n, std::vector<double>(n, 0.0));
  std::vector<design::CandidateLink> cands;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = pts[i].first - pts[j].first;
      const double dy = pts[i].second - pts[j].second;
      const double d = std::max(50.0, std::hypot(dx, dy));
      geod[i][j] = geod[j][i] = d;
      traffic[i][j] = traffic[j][i] = rng.uniform(0.01, 1.0);
      cands.push_back({i, j, d * rng.uniform(1.02, 1.12),
                       std::ceil(d / 90.0) + 1.0});
    }
  }
  auto fiber = geod;
  for (auto& row : fiber) {
    for (double& v : row) v *= 1.9;
  }
  return design::DesignInput(std::move(geod), std::move(fiber),
                             std::move(traffic), std::move(cands), budget);
}

class DesignSolverProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DesignSolverProperty, GreedyNeverBeatsExactAndStaysClose) {
  auto input = make_instance(5, GetParam(), 28.0);
  input.prune_dominated_candidates();
  const auto exact = design::solve_exact(input);
  if (!exact.proven_optimal) GTEST_SKIP() << "instance too hard for budget";
  const auto heuristic = design::solve_cisp(input);
  EXPECT_GE(heuristic.mean_stretch, exact.topology.mean_stretch - 1e-9);
  // Near-optimality (the paper's Fig. 2(b) property).
  EXPECT_LT(heuristic.mean_stretch - exact.topology.mean_stretch, 0.01);
}

TEST_P(DesignSolverProperty, BudgetMonotonicity) {
  const std::uint64_t seed = GetParam();
  double previous = 1e18;
  for (const double budget : {10.0, 25.0, 50.0, 100.0}) {
    const auto input = make_instance(7, seed, budget);
    const auto topo = design::solve_greedy(input);
    EXPECT_LE(topo.cost_towers, budget + 1e-9);
    EXPECT_LE(topo.mean_stretch, previous + 1e-6);
    previous = topo.mean_stretch;
  }
}

TEST_P(DesignSolverProperty, StretchBoundedByFiberAndMwQuality) {
  const auto input = make_instance(8, GetParam(), 60.0);
  const auto topo = design::solve_greedy(input);
  // Any design sits between "all MW at its best" and "all fiber".
  EXPECT_GE(topo.mean_stretch, 1.0);
  EXPECT_LE(topo.mean_stretch, 1.9 + 1e-9);
}

// ---------------------------------------------------------------------------
// Lazy-greedy stale-heap invariants, fuzzed over random candidate sets.
//
// The lazy heap treats a stale score as an upper bound on the fresh one
// (classic submodularity). For shortest-path benefits that bound is a
// HEURISTIC, not a theorem: building one link can shorten another
// candidate's access paths (d(s,u) drops while d(s,t) does not) and RAISE
// its benefit — the witness test below pins a concrete violation so nobody
// "optimizes" the batched re-scorer into assuming monotone scores. What
// the sharded implementation actually relies on, and what is asserted
// exactly here, is purity (a score re-evaluated against the same graph is
// bit-identical no matter which thread computes it or in what order) and
// prediction consistency (a fresh score equals the realized objective-sum
// drop when the link is added).
// ---------------------------------------------------------------------------

TEST_P(DesignSolverProperty, StaleScoreReevaluationIsPure) {
  const auto input = make_instance(7, GetParam() ^ 0xBEEF, 60.0);
  design::StretchEvaluator eval(input);
  const std::size_t m = input.candidates().size();
  Rng rng(GetParam());
  for (int epoch = 0; epoch < 5; ++epoch) {
    // Forward sweep, backward sweep, and a sweep interleaved with
    // unrelated const queries must agree bit for bit: benefit_of is a
    // pure function of (link, current graph), which is what makes the
    // parallel batch re-scorer's merged-by-index results independent of
    // scheduling.
    std::vector<double> forward(m), backward(m), interleaved(m);
    for (std::size_t l = 0; l < m; ++l) forward[l] = eval.benefit_of(l);
    for (std::size_t l = m; l-- > 0;) backward[l] = eval.benefit_of(l);
    for (std::size_t l = 0; l < m; ++l) {
      (void)eval.mean_stretch();
      (void)eval.benefit_of((l * 7 + 3) % m);
      interleaved[l] = eval.benefit_of(l);
    }
    EXPECT_EQ(forward, backward);
    EXPECT_EQ(forward, interleaved);
    eval.add_link(rng.uniform_index(m));
  }
}

TEST_P(DesignSolverProperty, FreshScorePredictsRealizedDropExactly) {
  const auto input = make_instance(7, GetParam() ^ 0xD00D, 80.0);
  design::StretchEvaluator eval(input);
  Rng rng(GetParam() * 31 + 7);
  const std::size_t m = input.candidates().size();
  std::vector<bool> added(m, false);
  for (int step = 0; step < 8; ++step) {
    const std::size_t pick = rng.uniform_index(m);
    if (added[pick]) continue;
    const double predicted = eval.benefit_of(pick);
    const double sum_before = eval.mean_stretch() * input.total_traffic();
    eval.add_link(pick);
    added[pick] = true;
    const double sum_after = eval.mean_stretch() * input.total_traffic();
    EXPECT_NEAR(sum_before - sum_after, predicted,
                1e-9 * std::max(1.0, sum_before));
    // And the objective is monotone under additions — the property that
    // keeps every heap score non-negative.
    EXPECT_LE(sum_after, sum_before + 1e-12);
  }
}

TEST(DesignSolverBoundary, StaleScoresAreNotAlwaysUpperBounds) {
  // Pin the boundary of the submodularity assumption: on this instance
  // family a re-evaluated benefit CAN exceed its stale heap score. If this
  // witness search ever comes back empty, benefits became genuinely
  // monotone and the lazy/batched re-scoring design notes should be
  // revisited.
  bool found = false;
  for (std::uint64_t seed = 0; seed < 40 && !found; ++seed) {
    const auto input = make_instance(8, 3000 + seed, 1e9);
    design::StretchEvaluator eval(input);
    const std::size_t m = input.candidates().size();
    std::vector<double> stale(m);
    for (std::size_t l = 0; l < m; ++l) stale[l] = eval.benefit_of(l);
    std::vector<bool> added(m, false);
    for (int step = 0; step < 8 && !found; ++step) {
      // Greedy adds: the order the lazy heap would actually realize.
      std::size_t best = SIZE_MAX;
      double best_score = 0.0;
      for (std::size_t l = 0; l < m; ++l) {
        if (added[l]) continue;
        const double b = eval.benefit_of(l);
        if (b > best_score) {
          best_score = b;
          best = l;
        }
      }
      if (best == SIZE_MAX) break;
      eval.add_link(best);
      added[best] = true;
      for (std::size_t l = 0; l < m && !found; ++l) {
        if (added[l]) continue;
        found = eval.benefit_of(l) > stale[l] + 1e-6;
      }
    }
  }
  EXPECT_TRUE(found)
      << "no submodularity violation found — benefits may now be monotone";
}

INSTANTIATE_TEST_SUITE_P(Instances, DesignSolverProperty,
                         ::testing::Range<std::uint64_t>(100, 112));

// ---------------------------------------------------------------------------
// MILP vs exhaustive enumeration over a family of set-cover-ish problems.
// ---------------------------------------------------------------------------

class MilpProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MilpProperty, MatchesExhaustiveOnRandomBinaryProblems) {
  Rng rng(GetParam());
  const std::size_t n = 7;
  lp::LinearProgram problem;
  problem.num_vars = n;
  problem.objective.resize(n);
  for (auto& c : problem.objective) c = rng.uniform(-8.0, -1.0);
  // Two random packing constraints plus binary bounds.
  for (int row = 0; row < 2; ++row) {
    std::vector<double> coeffs(n);
    for (auto& c : coeffs) c = rng.uniform(0.5, 4.0);
    problem.add_less_eq(std::move(coeffs), rng.uniform(4.0, 10.0));
  }
  std::vector<std::size_t> ints;
  for (std::size_t v = 0; v < n; ++v) {
    std::vector<double> bound(n, 0.0);
    bound[v] = 1.0;
    problem.add_less_eq(std::move(bound), 1.0);
    ints.push_back(v);
  }
  const auto milp = lp::solve_milp(problem, ints);
  ASSERT_EQ(milp.status, lp::SolveStatus::Optimal);

  double best = 0.0;
  for (unsigned mask = 0; mask < (1u << n); ++mask) {
    double obj = 0.0;
    bool feasible = true;
    for (const auto& cons : problem.constraints) {
      double lhs = 0.0;
      for (std::size_t v = 0; v < n; ++v) {
        if (mask & (1u << v)) lhs += cons.coeffs[v];
      }
      if (lhs > cons.rhs + 1e-9) feasible = false;
    }
    if (!feasible) continue;
    for (std::size_t v = 0; v < n; ++v) {
      if (mask & (1u << v)) obj += problem.objective[v];
    }
    best = std::min(best, obj);
  }
  EXPECT_NEAR(milp.objective, best, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MilpProperty,
                         ::testing::Range<std::uint64_t>(200, 215));

// ---------------------------------------------------------------------------
// TCP liveness and throughput sanity over a (bottleneck, size) grid.
// ---------------------------------------------------------------------------

class TcpGridProperty
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t, bool>> {
};

TEST_P(TcpGridProperty, FlowAlwaysCompletesWithinTheoreticalBounds) {
  const auto [bottleneck_bps, bytes, pacing] = GetParam();
  net::Simulator sim;
  net::Network network(sim, 3);
  const std::size_t l01 = network.add_duplex_link(0, 1, 1e10, 0.004, 2000);
  const std::size_t l12 =
      network.add_duplex_link(1, 2, bottleneck_bps, 0.004, 2000);
  network.node(0).set_route(0, 2, &network.link(l01));
  network.node(1).set_route(0, 2, &network.link(l12));
  network.node(2).set_route(2, 0, &network.link(l12 + 1));
  network.node(1).set_route(2, 0, &network.link(l01 + 1));
  net::TcpRegistry registry;
  registry.install(network, 0);
  registry.install(network, 2);
  net::TcpFlow::Params params;
  params.pacing = pacing;
  net::TcpFlow flow(network, registry, 1, 0, 2, bytes, params);
  flow.start(0.0);
  sim.run_until(120.0);
  ASSERT_TRUE(flow.complete())
      << "bottleneck=" << bottleneck_bps << " bytes=" << bytes;
  // Lower bound: transfer at line rate + one RTT.
  const double min_fct = static_cast<double>(bytes) * 8.0 / bottleneck_bps +
                         0.016;
  EXPECT_GE(flow.fct_s(), min_fct * 0.9);
  // Upper bound: generous 50x line-rate time + slow-start allowance.
  EXPECT_LE(flow.fct_s(), min_fct * 50.0 + 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    RateSizeGrid, TcpGridProperty,
    ::testing::Combine(::testing::Values(2e6, 2e7, 2e8),
                       ::testing::Values(50000, 500000, 3000000),
                       ::testing::Bool()));

// ---------------------------------------------------------------------------
// Link budget: outage thresholds behave physically across a grid.
// ---------------------------------------------------------------------------

class OutageGridProperty : public ::testing::TestWithParam<double> {};

TEST_P(OutageGridProperty, ThresholdSeparatesUpFromDown) {
  const double hop_km = GetParam();
  const double threshold = rf::outage_rain_rate_mm_h(hop_km);
  if (threshold >= 1000.0) GTEST_SKIP() << "hop unbreakable at this length";
  EXPECT_FALSE(rf::hop_fails_in_rain(hop_km, threshold * 0.9));
  EXPECT_TRUE(rf::hop_fails_in_rain(hop_km, threshold * 1.1));
}

INSTANTIATE_TEST_SUITE_P(HopLengths, OutageGridProperty,
                         ::testing::Values(15.0, 30.0, 45.0, 60.0, 75.0,
                                           90.0, 100.0));

}  // namespace
}  // namespace cisp
