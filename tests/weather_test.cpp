// Unit and integration tests for the weather subsystem: storm-cell
// kinematics, rain field statistics (wet fractions, seasonal and
// convective structure), the binary outage model, and a reduced Fig. 7
// study on a fast scenario.

#include <gtest/gtest.h>

#include <cmath>

#include "design/greedy.hpp"
#include "geo/geodesic.hpp"
#include "design/scenario.hpp"
#include "util/rng.hpp"
#include "weather/outage.hpp"
#include "weather/rainfield.hpp"
#include "weather/study.hpp"

namespace cisp::weather {
namespace {

const terrain::BoundingBox kUsBox{24.0, 50.0, -125.5, -66.0};

TEST(StormCell, MovesAlongHeadingAndRespectsLifetime) {
  StormCell cell;
  cell.birth_pos = {40.0, -100.0};
  cell.birth_s = 1000.0;
  cell.death_s = 1000.0 + 7200.0;  // 2 hours
  cell.peak_mm_h = 50.0;
  cell.sigma_km = 20.0;
  cell.heading_deg = 90.0;
  cell.speed_kmh = 40.0;
  EXPECT_FALSE(cell.active(0.0));
  EXPECT_TRUE(cell.active(4600.0));
  const auto mid = cell.center_at(cell.birth_s + 3600.0);
  EXPECT_NEAR(geo::distance_km(cell.birth_pos, mid), 40.0, 0.5);
  EXPECT_GT(mid.lon_deg, cell.birth_pos.lon_deg);  // moved east
}

TEST(StormCell, RainPeaksAtCenterAndDecaysWithDistance) {
  StormCell cell;
  cell.birth_pos = {40.0, -100.0};
  cell.birth_s = 0.0;
  cell.death_s = 7200.0;
  cell.peak_mm_h = 60.0;
  cell.sigma_km = 15.0;
  cell.speed_kmh = 0.0;
  const double t = 3600.0;  // mid-life: envelope = sin(pi/2) = 1
  const double at_center = cell.rain_at(cell.birth_pos, t);
  EXPECT_NEAR(at_center, 60.0, 1.0);
  const auto off = geo::destination(cell.birth_pos, 0.0, 15.0);
  EXPECT_NEAR(cell.rain_at(off, t), 60.0 * std::exp(-0.5), 1.0);
  const auto far = geo::destination(cell.birth_pos, 0.0, 100.0);
  EXPECT_DOUBLE_EQ(cell.rain_at(far, t), 0.0);
}

TEST(RainField, DeterministicAndYearScaleCellCount) {
  const RainField a(kUsBox);
  const RainField b(kUsBox);
  EXPECT_EQ(a.cell_count(), b.cell_count());
  // ~30-70 cells/day for a year.
  EXPECT_GT(a.cell_count(), 8000u);
  EXPECT_LT(a.cell_count(), 30000u);
}

TEST(RainField, SummerHasMoreActiveCellsThanWinter) {
  const RainField field(kUsBox);
  std::size_t winter = 0;
  std::size_t summer = 0;
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    winter += field.active_cells((10.0 + i) * kDayS + 43200.0).size();
    summer += field.active_cells((190.0 + i) * kDayS + 43200.0).size();
  }
  EXPECT_GT(summer, winter);
}

TEST(RainField, WetFractionIsRealistic) {
  // Point-in-time wet fraction over random (place, time) samples: real
  // mid-latitude continents see rain over a few percent of area-time.
  const RainField field(kUsBox);
  Rng rng(7);
  int wet = 0;
  int heavy = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const geo::LatLon p{rng.uniform(kUsBox.lat_min, kUsBox.lat_max),
                        rng.uniform(kUsBox.lon_min, kUsBox.lon_max)};
    const double rate = field.rain_mm_h(p, rng.uniform() * kYearS);
    if (rate > 0.25) ++wet;
    if (rate > 50.0) ++heavy;
  }
  const double wet_fraction = static_cast<double>(wet) / n;
  EXPECT_GT(wet_fraction, 0.01);
  EXPECT_LT(wet_fraction, 0.20);
  // Violent rain is rare but must exist.
  EXPECT_GT(heavy, 0);
  EXPECT_LT(static_cast<double>(heavy) / n, 0.005);
}

TEST(RainField, RejectsTimeOutsideYear) {
  const RainField field(kUsBox);
  EXPECT_THROW((void)field.rain_mm_h({40, -100}, -1.0), cisp::Error);
  EXPECT_THROW((void)field.rain_mm_h({40, -100}, kYearS + 1.0), cisp::Error);
}

TEST(Outage, DryHopNeverFails) {
  const RainField field(kUsBox, {.seed = 1, .cells_per_day_winter = 0.0,
                                 .cells_per_day_summer = 0.0});
  OutageModel model;
  infra::Tower a{{40.0, -100.0}, 100.0};
  infra::Tower b{{40.0, -99.0}, 100.0};
  EXPECT_FALSE(model.hop_down(a, b, field, 1000.0));
}

TEST(Outage, ViolentCellOverHopKnocksItOut) {
  // One stationary convective monster directly on the hop.
  RainParams params;
  params.seed = 3;
  params.cells_per_day_winter = 0.0;
  params.cells_per_day_summer = 0.0;
  const RainField empty(kUsBox, params);
  OutageModel model;
  // Craft the cell by hand and test through the rf layer directly: the
  // outage threshold for an 85-km hop sits near 40-60 mm/h.
  const double threshold = rf::outage_rain_rate_mm_h(85.0, model.budget);
  EXPECT_GT(threshold, 10.0);
  EXPECT_LT(threshold, 200.0);
  EXPECT_TRUE(rf::hop_fails_in_rain(85.0, threshold * 1.1, model.budget));
  (void)empty;
}

TEST(Outage, LinkDownIffSomeHopDown) {
  const RainField field(kUsBox);
  OutageModel model;
  // Find a moment & place with violent rain by scanning cells.
  bool found_down_hop = false;
  for (double t = 180.0 * kDayS; t < 230.0 * kDayS && !found_down_hop;
       t += kDayS / 4.0) {
    for (const StormCell* cell : field.active_cells(t)) {
      if (cell->peak_mm_h < 60.0) continue;
      const auto center = cell->center_at(t);
      if (!kUsBox.contains(center)) continue;
      infra::Tower a{geo::destination(center, 270.0, 40.0), 100.0};
      infra::Tower b{geo::destination(center, 90.0, 40.0), 100.0};
      if (model.hop_down(a, b, field, t)) {
        found_down_hop = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found_down_hop);
}

TEST(Study, ReducedYearStudyMatchesPaperShape) {
  design::ScenarioOptions options;
  options.fast = true;
  options.top_cities = 40;
  const auto scenario = design::build_us_scenario(options);
  const auto problem = design::city_city_problem(scenario, 500.0, 20);
  const auto topo = design::solve_greedy(problem.input);
  ASSERT_FALSE(topo.links.empty());

  const RainField rain(scenario.region.box);
  StudyParams params;
  params.days = 120;  // reduced year for test speed
  const auto result = run_weather_study(problem, topo,
                                        scenario.tower_graph.towers, rain,
                                        params);
  ASSERT_EQ(result.best_stretch.count(), 20u * 19u / 2u);
  // Paper's qualitative claims:
  // (1) best <= p99 <= worst pairwise distributions;
  EXPECT_LE(result.best_stretch.median(), result.p99_stretch.median() + 1e-9);
  EXPECT_LE(result.p99_stretch.median(), result.worst_stretch.median() + 1e-9);
  // (2) even the worst day stays well below fiber for the median pair;
  EXPECT_LT(result.worst_stretch.median(), result.fiber_stretch.median());
  // (3) outages happen (weather is real) but most links stay up.
  EXPECT_GT(result.days_with_any_outage, 0);
  EXPECT_LT(result.mean_links_down_fraction, 0.25);
}

TEST(Study, ResultBitIdenticalAcrossThreadCounts) {
  design::ScenarioOptions options;
  options.fast = true;
  options.top_cities = 30;
  const auto scenario = design::build_us_scenario(options);
  const auto problem = design::city_city_problem(scenario, 400.0, 12);
  const auto topo = design::solve_greedy(problem.input);
  ASSERT_FALSE(topo.links.empty());

  const RainField rain(scenario.region.box);
  StudyParams params;
  params.days = 40;
  params.threads = 1;
  const auto serial = run_weather_study(problem, topo,
                                        scenario.tower_graph.towers, rain,
                                        params);
  params.threads = 4;
  const auto parallel = run_weather_study(problem, topo,
                                          scenario.tower_graph.towers, rain,
                                          params);
  // The per-day seeds and the day-ordered merge make the whole result
  // bit-identical, not merely statistically equivalent.
  EXPECT_EQ(serial.best_stretch.values(), parallel.best_stretch.values());
  EXPECT_EQ(serial.p99_stretch.values(), parallel.p99_stretch.values());
  EXPECT_EQ(serial.worst_stretch.values(), parallel.worst_stretch.values());
  EXPECT_EQ(serial.fiber_stretch.values(), parallel.fiber_stretch.values());
  EXPECT_EQ(serial.mean_links_down_fraction,
            parallel.mean_links_down_fraction);
  EXPECT_EQ(serial.days_with_any_outage, parallel.days_with_any_outage);
}

}  // namespace
}  // namespace cisp::weather
