// Tests for the extension features beyond the paper's headline pipeline:
// technology profiles (§3.4 generality), adaptive bandwidth degradation
// (§6.1's "can only improve" remark), and the ASCII map renderer used by
// the topology figures.

#include <gtest/gtest.h>

#include <sstream>

#include "design/greedy.hpp"
#include "design/scenario.hpp"
#include "rf/link_budget.hpp"
#include "rf/rain.hpp"
#include "rf/technology.hpp"
#include "util/ascii_map.hpp"
#include "util/error.hpp"
#include "weather/outage.hpp"
#include "weather/study.hpp"

namespace cisp {
namespace {

TEST(Technology, ProfilesEncodeTheRangeBandwidthTradeoff) {
  const auto mw = rf::microwave();
  const auto mmw = rf::millimeter_wave();
  const auto fso = rf::free_space_optics();
  // Range ordering: MW >> MMW > FSO.
  EXPECT_GT(mw.max_range_km, 3.0 * mmw.max_range_km);
  EXPECT_GT(mmw.max_range_km, fso.max_range_km);
  // Bandwidth ordering is inverted.
  EXPECT_LT(mw.series_gbps, mmw.series_gbps);
  EXPECT_LT(mmw.series_gbps, fso.series_gbps);
  // Only FSO fears fog.
  EXPECT_DOUBLE_EQ(mw.fog_outage_probability, 0.0);
  EXPECT_GT(fso.fog_outage_probability, 0.0);
}

TEST(Technology, HigherBandsBreakAtLowerRainRates) {
  const auto mw = rf::microwave();
  const auto mmw = rf::millimeter_wave();
  // Same 12 km hop: the E-band hop dies at a far lower rain rate.
  const double mw_threshold = rf::outage_rain_rate_mm_h(12.0, mw.budget);
  const double mmw_threshold = rf::outage_rain_rate_mm_h(12.0, mmw.budget);
  EXPECT_LT(mmw_threshold, mw_threshold * 0.5);
}

TEST(Technology, FresnelNeedsShrinkWithBeamWidth) {
  EXPECT_LT(rf::free_space_optics().fresnel_fraction,
            rf::millimeter_wave().fresnel_fraction);
  EXPECT_LT(rf::millimeter_wave().fresnel_fraction,
            rf::microwave().fresnel_fraction + 1e-12);
}

TEST(AdaptiveOutage, CapacityFactorBracketsBinaryModel) {
  // factor == 0 exactly when the binary model says "down"; clear weather
  // gives factor 1; the transition in between is monotone in rain rate.
  weather::OutageModel model;
  const terrain::BoundingBox box{35.0, 45.0, -110.0, -90.0};
  weather::RainParams none;
  none.cells_per_day_summer = 0.0;
  none.cells_per_day_winter = 0.0;
  const weather::RainField dry(box, none);
  infra::Tower a{{40.0, -100.0}, 120.0};
  infra::Tower b{{40.0, -99.2}, 120.0};
  EXPECT_DOUBLE_EQ(model.hop_capacity_factor(a, b, dry, 1000.0), 1.0);

  const weather::RainField wet(box);
  // Sweep the year; wherever the binary model declares the hop down, the
  // factor must be 0, and vice versa.
  for (double t = 150.0 * weather::kDayS; t < 250.0 * weather::kDayS;
       t += weather::kDayS / 3.0) {
    const bool down = model.hop_down(a, b, wet, t);
    const double factor = model.hop_capacity_factor(a, b, wet, t);
    EXPECT_EQ(down, factor <= 0.0) << "t=" << t;
    EXPECT_GE(factor, 0.0);
    EXPECT_LE(factor, 1.0);
  }
}

TEST(AdaptiveOutage, StudyImprovesWorstCase) {
  design::ScenarioOptions options;
  options.fast = true;
  options.top_cities = 40;
  const auto scenario = design::build_us_scenario(options);
  const auto problem = design::city_city_problem(scenario, 500.0, 18);
  const auto topo = design::solve_greedy(problem.input);
  const weather::RainField rain(scenario.region.box);

  weather::StudyParams binary;
  binary.days = 90;
  weather::StudyParams adaptive = binary;
  adaptive.adaptive_bandwidth = true;
  const auto b = weather::run_weather_study(
      problem, topo, scenario.tower_graph.towers, rain, binary);
  const auto a = weather::run_weather_study(
      problem, topo, scenario.tower_graph.towers, rain, adaptive);
  // Adaptive keeps grazed links alive: never more outage, never worse
  // stretch (the paper's "can only improve these numbers").
  EXPECT_LE(a.mean_links_down_fraction, b.mean_links_down_fraction + 1e-12);
  EXPECT_LE(a.worst_stretch.median(), b.worst_stretch.median() + 1e-12);
  EXPECT_LE(a.days_with_any_outage, b.days_with_any_outage);
}

TEST(AsciiMap, PlotsLinesAndLabelsInsideBox) {
  AsciiMap map(24.0, 50.0, -125.0, -66.0, 60, 20);
  map.line(40.7, -74.0, 34.05, -118.24, '*');
  map.plot(40.7, -74.0, 'O');
  map.label(45.0, -100.0, "HELLO");
  std::ostringstream os;
  map.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find('O'), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("HELLO"), std::string::npos);
  // 20 grid rows + 2 border rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 22);
}

TEST(AsciiMap, IgnoresOutOfBoxPoints) {
  AsciiMap map(24.0, 50.0, -125.0, -66.0, 60, 20);
  map.plot(60.0, -100.0, 'X');  // north of the box
  map.plot(40.0, -130.0, 'X');  // west of the box
  std::ostringstream os;
  map.print(os);
  EXPECT_EQ(os.str().find('X'), std::string::npos);
}

TEST(AsciiMap, RejectsDegenerateBox) {
  EXPECT_THROW(AsciiMap(10.0, 10.0, 0.0, 1.0), Error);
  EXPECT_THROW(AsciiMap(0.0, 1.0, 0.0, 1.0, 4, 4), Error);
}

}  // namespace
}  // namespace cisp
