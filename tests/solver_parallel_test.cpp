// Determinism / equivalence suite for the sharded design solvers: the
// greedy heuristic and the exact branch-and-bound must return BYTE-IDENTICAL
// selections, costs and objective values at every thread count (1, 2, 4 and
// the hardware default), across seeds and budget levels. This is the
// contract that lets experiments sweep a solver-threads axis, and the
// result cache ignore thread counts, without ever changing reported
// numbers. Also locks the warm-start regression guarantee: branch and
// bound starts from a greedy incumbent and only ever improves on it.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "design/exact.hpp"
#include "design/greedy.hpp"
#include "design/problem.hpp"
#include "util/rng.hpp"

namespace cisp::design {
namespace {

/// Random planar instance with all-pairs MW candidates (same family as the
/// solver property tests): Euclidean geodesics, 1.9x fiber, 1.02-1.12x MW.
DesignInput make_instance(std::size_t n, std::uint64_t seed, double budget) {
  Rng rng(seed);
  std::vector<std::pair<double, double>> pts;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, 4000.0), rng.uniform(0.0, 2000.0)});
  }
  std::vector<std::vector<double>> geod(n, std::vector<double>(n, 0.0));
  std::vector<std::vector<double>> traffic(n, std::vector<double>(n, 0.0));
  std::vector<CandidateLink> cands;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = pts[i].first - pts[j].first;
      const double dy = pts[i].second - pts[j].second;
      const double d = std::max(50.0, std::hypot(dx, dy));
      geod[i][j] = geod[j][i] = d;
      traffic[i][j] = traffic[j][i] = rng.uniform(0.01, 1.0);
      cands.push_back({i, j, d * rng.uniform(1.02, 1.12),
                       std::ceil(d / 90.0) + 1.0});
    }
  }
  auto fiber = geod;
  for (auto& row : fiber) {
    for (double& v : row) v *= 1.9;
  }
  return DesignInput(std::move(geod), std::move(fiber), std::move(traffic),
                     std::move(cands), budget);
}

/// Byte-identical topology comparison: link sequence, exact cost bits,
/// exact objective bits. EXPECT_EQ on doubles is operator== — any
/// difference in the computation sequence across thread counts would show.
void expect_identical(const Topology& a, const Topology& b,
                      const std::string& what) {
  EXPECT_EQ(a.links, b.links) << what;
  EXPECT_EQ(a.cost_towers, b.cost_towers) << what;
  EXPECT_EQ(a.mean_stretch, b.mean_stretch) << what;
}

constexpr std::size_t kThreadCounts[] = {2, 4, 0};  // 0 = hardware default

class SolverParallelEquivalence
    : public ::testing::TestWithParam<std::uint64_t> {};

// ---------------------------------------------------------------------------
// Greedy: selections are invariant under sharding.
// ---------------------------------------------------------------------------

TEST_P(SolverParallelEquivalence, GreedySelectionsIdenticalAcrossThreads) {
  for (const double budget : {20.0, 60.0, 150.0}) {
    const auto input = make_instance(8, GetParam(), budget);
    GreedyOptions serial_options;
    serial_options.solver.threads = 1;
    const Topology serial = solve_greedy(input, serial_options);
    EXPECT_LE(serial.cost_towers, budget + 1e-9);
    for (const std::size_t threads : kThreadCounts) {
      GreedyOptions options;
      options.solver.threads = threads;
      expect_identical(serial, solve_greedy(input, options),
                       "greedy budget=" + std::to_string(budget) +
                           " threads=" + std::to_string(threads));
    }
  }
}

TEST_P(SolverParallelEquivalence, GreedyWithoutRefinementAlsoIdentical) {
  // The raw lazy-greedy loop (no swap pass) shards its heap fill and
  // stale-entry re-scoring; cover it separately so a regression in the
  // refinement passes cannot mask one in the core loop.
  const auto input = make_instance(9, GetParam() ^ 0x5EED, 80.0);
  GreedyOptions serial_options;
  serial_options.swap_refinement = false;
  serial_options.solver.threads = 1;
  const Topology serial = solve_greedy(input, serial_options);
  for (const std::size_t threads : kThreadCounts) {
    GreedyOptions options;
    options.swap_refinement = false;
    options.solver.threads = threads;
    expect_identical(serial, solve_greedy(input, options),
                     "lazy-only threads=" + std::to_string(threads));
  }
}

TEST_P(SolverParallelEquivalence, CandidatePoolIdenticalAcrossThreads) {
  const auto input = make_instance(8, GetParam() ^ 0xBA5E, 50.0);
  const auto serial = greedy_candidate_pool(input, 2.0, {.threads = 1});
  for (const std::size_t threads : kThreadCounts) {
    EXPECT_EQ(serial, greedy_candidate_pool(input, 2.0, {.threads = threads}))
        << "pool threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Exact branch and bound: subtree sharding is invisible in the result.
// ---------------------------------------------------------------------------

TEST_P(SolverParallelEquivalence, ExactSelectionsIdenticalAcrossThreads) {
  for (const double budget : {18.0, 28.0, 40.0}) {
    auto input = make_instance(5, GetParam() ^ 0xE0, budget);
    input.prune_dominated_candidates();
    ExactOptions serial_options;
    serial_options.solver.threads = 1;
    const ExactResult serial = solve_exact(input, serial_options);
    ASSERT_TRUE(serial.proven_optimal);
    EXPECT_EQ(serial.subtree_tasks, 1u);
    for (const std::size_t threads : kThreadCounts) {
      ExactOptions options;
      options.solver.threads = threads;
      const ExactResult sharded = solve_exact(input, options);
      EXPECT_TRUE(sharded.proven_optimal);
      expect_identical(serial.topology, sharded.topology,
                       "exact budget=" + std::to_string(budget) +
                           " threads=" + std::to_string(threads));
    }
  }
}

TEST_P(SolverParallelEquivalence, ExactNeverScoresBelowGreedyWarmStart) {
  // Regression guarantee: the search starts from a greedy incumbent and
  // monotonically improves, so the reported optimum can never be worse
  // than the warm start — at any thread count, proven or aborted.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    auto input = make_instance(6, GetParam() ^ 0xAB, 30.0);
    input.prune_dominated_candidates();
    ExactOptions options;
    options.solver.threads = threads;
    const ExactResult result = solve_exact(input, options);
    EXPECT_GT(result.warm_start_stretch, 0.0);
    EXPECT_LE(result.topology.mean_stretch,
              result.warm_start_stretch + 1e-12)
        << "threads=" << threads;
  }
}

TEST_P(SolverParallelEquivalence, ExactPoolRestrictionIdenticalAcrossThreads) {
  auto input = make_instance(6, GetParam() ^ 0xF0, 35.0);
  input.prune_dominated_candidates();
  ExactOptions serial_options;
  serial_options.candidate_pool = {0, 1, 2, 3, 4};
  serial_options.solver.threads = 1;
  const ExactResult serial = solve_exact(input, serial_options);
  for (const std::size_t threads : kThreadCounts) {
    ExactOptions options;
    options.candidate_pool = serial_options.candidate_pool;
    options.solver.threads = threads;
    expect_identical(serial.topology, solve_exact(input, options).topology,
                     "pooled exact threads=" + std::to_string(threads));
  }
}

// ---------------------------------------------------------------------------
// The composed pipeline (greedy pool + exact refinement).
// ---------------------------------------------------------------------------

TEST_P(SolverParallelEquivalence, CispPipelineIdenticalAcrossThreads) {
  const auto input = make_instance(6, GetParam() ^ 0xC1, 30.0);
  CispOptions serial_options;
  serial_options.greedy.solver.threads = 1;
  const Topology serial = solve_cisp(input, serial_options);
  for (const std::size_t threads : kThreadCounts) {
    CispOptions options;
    options.greedy.solver.threads = threads;
    expect_identical(serial, solve_cisp(input, options),
                     "cisp threads=" + std::to_string(threads));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverParallelEquivalence,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace cisp::design
