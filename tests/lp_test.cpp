// Unit and property tests for src/lp: simplex on known LPs, degenerate and
// infeasible/unbounded cases, randomized verification against brute-force
// vertex enumeration, and branch-and-bound MILP on knapsack instances.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "lp/milp.hpp"
#include "lp/simplex.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace cisp::lp {
namespace {

TEST(Simplex, TextbookMaximization) {
  // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18  => x=2, y=6, obj=36.
  LinearProgram lp;
  lp.num_vars = 2;
  lp.objective = {-3.0, -5.0};  // minimize the negation
  lp.add_less_eq({1.0, 0.0}, 4.0);
  lp.add_less_eq({0.0, 2.0}, 12.0);
  lp.add_less_eq({3.0, 2.0}, 18.0);
  const auto sol = solve(lp);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, -36.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 6.0, 1e-9);
}

TEST(Simplex, GreaterEqAndEqualityConstraints) {
  // min x + 2y st x + y = 10, x >= 3  => x=10? No: y >= 0, so x=10,y=0
  // would violate x>=3? It satisfies it. obj = 10. But x + 2y with y=0 and
  // x=10 -> 10; alternative x=3,y=7 -> 17. Optimal: x=10.
  LinearProgram lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 2.0};
  lp.add_equal({1.0, 1.0}, 10.0);
  lp.add_greater_eq({1.0, 0.0}, 3.0);
  const auto sol = solve(lp);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, 10.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 10.0, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  LinearProgram lp;
  lp.num_vars = 1;
  lp.objective = {1.0};
  lp.add_less_eq({1.0}, 1.0);
  lp.add_greater_eq({1.0}, 2.0);
  EXPECT_EQ(solve(lp).status, SolveStatus::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LinearProgram lp;
  lp.num_vars = 1;
  lp.objective = {-1.0};  // maximize x with no upper bound
  lp.add_greater_eq({1.0}, 0.0);
  EXPECT_EQ(solve(lp).status, SolveStatus::Unbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // -x <= -5  <=>  x >= 5.
  LinearProgram lp;
  lp.num_vars = 1;
  lp.objective = {1.0};
  lp.add_less_eq({-1.0}, -5.0);
  const auto sol = solve(lp);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.x[0], 5.0, 1e-9);
}

TEST(Simplex, DegenerateVertexTerminates) {
  // Classic degenerate LP (multiple constraints active at the optimum).
  LinearProgram lp;
  lp.num_vars = 2;
  lp.objective = {-1.0, -1.0};
  lp.add_less_eq({1.0, 0.0}, 1.0);
  lp.add_less_eq({0.0, 1.0}, 1.0);
  lp.add_less_eq({1.0, 1.0}, 2.0);  // redundant at the optimum
  const auto sol = solve(lp);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, -2.0, 1e-9);
}

TEST(Simplex, TransportationProblem) {
  // 2 plants (supply 20, 30) x 2 markets (demand 25, 25); costs
  // [[2,3],[4,1]]. Optimal: x11=20, x21=5, x22=25 -> 40+20+25 = 85.
  LinearProgram lp;
  lp.num_vars = 4;  // x11 x12 x21 x22
  lp.objective = {2.0, 3.0, 4.0, 1.0};
  lp.add_less_eq({1.0, 1.0, 0.0, 0.0}, 20.0);
  lp.add_less_eq({0.0, 0.0, 1.0, 1.0}, 30.0);
  lp.add_equal({1.0, 0.0, 1.0, 0.0}, 25.0);
  lp.add_equal({0.0, 1.0, 0.0, 1.0}, 25.0);
  const auto sol = solve(lp);
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, 85.0, 1e-6);
}

/// Brute force over constraint-intersection vertices for 2-variable LPs.
double brute_force_2d(const LinearProgram& lp) {
  std::vector<std::pair<double, double>> candidates = {{0.0, 0.0}};
  // Intersections of all constraint boundary pairs (incl. axes).
  std::vector<std::array<double, 3>> lines;  // a x + b y = c
  for (const auto& cons : lp.constraints) {
    lines.push_back({cons.coeffs[0], cons.coeffs[1], cons.rhs});
  }
  lines.push_back({1.0, 0.0, 0.0});
  lines.push_back({0.0, 1.0, 0.0});
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (std::size_t j = i + 1; j < lines.size(); ++j) {
      const double det = lines[i][0] * lines[j][1] - lines[j][0] * lines[i][1];
      if (std::fabs(det) < 1e-9) continue;
      const double x = (lines[i][2] * lines[j][1] - lines[j][2] * lines[i][1]) / det;
      const double y = (lines[i][0] * lines[j][2] - lines[j][0] * lines[i][2]) / det;
      candidates.push_back({x, y});
    }
  }
  double best = std::numeric_limits<double>::infinity();
  for (const auto& [x, y] : candidates) {
    if (x < -1e-9 || y < -1e-9) continue;
    bool feasible = true;
    for (const auto& cons : lp.constraints) {
      const double lhs = cons.coeffs[0] * x + cons.coeffs[1] * y;
      if (cons.sense == Sense::LessEq && lhs > cons.rhs + 1e-7) feasible = false;
      if (cons.sense == Sense::GreaterEq && lhs < cons.rhs - 1e-7) feasible = false;
      if (cons.sense == Sense::Equal && std::fabs(lhs - cons.rhs) > 1e-7)
        feasible = false;
    }
    if (feasible) {
      best = std::min(best, lp.objective[0] * x + lp.objective[1] * y);
    }
  }
  return best;
}

TEST(Simplex, RandomTwoVarLpsMatchBruteForceProperty) {
  Rng rng(61);
  int solved = 0;
  for (int trial = 0; trial < 200; ++trial) {
    LinearProgram lp;
    lp.num_vars = 2;
    lp.objective = {rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)};
    const int n_cons = 2 + static_cast<int>(rng.uniform_index(4));
    for (int c = 0; c < n_cons; ++c) {
      // Only <= with positive coefficients + a box keeps things bounded.
      lp.add_less_eq({rng.uniform(0.1, 3.0), rng.uniform(0.1, 3.0)},
                     rng.uniform(1.0, 20.0));
    }
    lp.add_less_eq({1.0, 0.0}, 50.0);
    lp.add_less_eq({0.0, 1.0}, 50.0);
    const auto sol = solve(lp);
    ASSERT_EQ(sol.status, SolveStatus::Optimal);
    const double reference = brute_force_2d(lp);
    EXPECT_NEAR(sol.objective, reference, 1e-6);
    ++solved;
  }
  EXPECT_EQ(solved, 200);
}

TEST(Milp, SmallKnapsack) {
  // max 10a + 13b + 8c st 3a + 4b + 2c <= 6, binary  => b+c: 21.
  LinearProgram lp;
  lp.num_vars = 3;
  lp.objective = {-10.0, -13.0, -8.0};
  lp.add_less_eq({3.0, 4.0, 2.0}, 6.0);
  for (std::size_t v = 0; v < 3; ++v) {
    std::vector<double> row(3, 0.0);
    row[v] = 1.0;
    lp.add_less_eq(std::move(row), 1.0);
  }
  const auto result = solve_milp(lp, {0, 1, 2});
  ASSERT_EQ(result.status, SolveStatus::Optimal);
  EXPECT_NEAR(result.objective, -21.0, 1e-6);
  EXPECT_NEAR(result.x[1], 1.0, 1e-6);
  EXPECT_NEAR(result.x[2], 1.0, 1e-6);
}

TEST(Milp, IntegerRoundingMatters) {
  // LP relaxation would take x = 1.5; the MILP must settle for x = 1.
  LinearProgram lp;
  lp.num_vars = 1;
  lp.objective = {-1.0};
  lp.add_less_eq({2.0}, 3.0);
  const auto result = solve_milp(lp, {0});
  ASSERT_EQ(result.status, SolveStatus::Optimal);
  EXPECT_NEAR(result.x[0], 1.0, 1e-6);
}

TEST(Milp, MixedIntegerKeepsContinuousVarsFractional) {
  // min -x - y st x + y <= 2.5, x integer, y continuous -> x=2, y=0.5? No:
  // x=2,y=0.5 obj=-2.5; x=1,y=1.5 same. Optimal value -2.5 either way.
  LinearProgram lp;
  lp.num_vars = 2;
  lp.objective = {-1.0, -1.0};
  lp.add_less_eq({1.0, 1.0}, 2.5);
  lp.add_less_eq({1.0, 0.0}, 2.0);
  lp.add_less_eq({0.0, 1.0}, 2.0);
  const auto result = solve_milp(lp, {0});
  ASSERT_EQ(result.status, SolveStatus::Optimal);
  EXPECT_NEAR(result.objective, -2.5, 1e-6);
  EXPECT_NEAR(result.x[0], std::round(result.x[0]), 1e-6);
}

TEST(Milp, InfeasibleIntegerProblem) {
  // 0.4 <= x <= 0.6 has no integer point.
  LinearProgram lp;
  lp.num_vars = 1;
  lp.objective = {1.0};
  lp.add_greater_eq({1.0}, 0.4);
  lp.add_less_eq({1.0}, 0.6);
  EXPECT_EQ(solve_milp(lp, {0}).status, SolveStatus::Infeasible);
}

TEST(Milp, RandomKnapsacksMatchExhaustiveProperty) {
  Rng rng(67);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 8;
    std::vector<double> value(n);
    std::vector<double> weight(n);
    for (std::size_t i = 0; i < n; ++i) {
      value[i] = rng.uniform(1.0, 10.0);
      weight[i] = rng.uniform(1.0, 6.0);
    }
    const double cap = rng.uniform(6.0, 18.0);

    LinearProgram lp;
    lp.num_vars = n;
    lp.objective.resize(n);
    for (std::size_t i = 0; i < n; ++i) lp.objective[i] = -value[i];
    lp.add_less_eq(weight, cap);
    std::vector<std::size_t> ints;
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<double> row(n, 0.0);
      row[i] = 1.0;
      lp.add_less_eq(std::move(row), 1.0);
      ints.push_back(i);
    }
    const auto result = solve_milp(lp, ints);
    ASSERT_EQ(result.status, SolveStatus::Optimal);

    // Exhaustive reference.
    double best = 0.0;
    for (unsigned mask = 0; mask < (1u << n); ++mask) {
      double v = 0.0;
      double w = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (mask & (1u << i)) {
          v += value[i];
          w += weight[i];
        }
      }
      if (w <= cap) best = std::max(best, v);
    }
    EXPECT_NEAR(-result.objective, best, 1e-6);
  }
}

TEST(Milp, NodeBudgetReturnsIncumbent) {
  LinearProgram lp;
  lp.num_vars = 6;
  lp.objective = {-5, -4, -3, -6, -7, -2};
  lp.add_less_eq({3, 2, 4, 5, 6, 1}, 10.0);
  std::vector<std::size_t> ints;
  for (std::size_t i = 0; i < 6; ++i) {
    std::vector<double> row(6, 0.0);
    row[i] = 1.0;
    lp.add_less_eq(std::move(row), 1.0);
    ints.push_back(i);
  }
  MilpOptions options;
  options.max_nodes = 2;  // far too small to prove optimality
  const auto result = solve_milp(lp, ints, options);
  EXPECT_LE(result.nodes_explored, 2u);
  // Either no incumbent yet (Infeasible reported) or an unproven one.
  EXPECT_NE(result.status, SolveStatus::Optimal);
}

TEST(Milp, RejectsBadVariableIndex) {
  LinearProgram lp;
  lp.num_vars = 1;
  lp.objective = {1.0};
  lp.add_less_eq({1.0}, 1.0);
  EXPECT_THROW(solve_milp(lp, {5}), cisp::Error);
}

}  // namespace
}  // namespace cisp::lp
